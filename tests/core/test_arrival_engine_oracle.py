"""Equivalence oracle for the interned, batch-aware arrival engine.

PR 5 rebuilt the registration hot path: interned sort keys replace on-the-fly
``repr`` in every ordering, the trie nodes are slotted, and
``register_peers`` computes co-arriving neighbour lists through one shared
frontier per attachment cluster instead of one tree walk per newcomer.  None
of that is allowed to change a single byte of output.

This harness pins that with a **reference implementation kept in the tests**:
:class:`ReferencePlane` computes registration results the slow, obviously
correct way — brute-force path-pair ``dtree`` ranking sorted by
``(distance, repr(peer))``, an exhaustive cross-landmark fill, and a
line-by-line transliteration of the paper's ordered-list cache propagation —
with no interning, no trie, no clustering.  Every management plane
(single server, sharded coordinator over inline shards, sharded coordinator
over process shards; 1–8 shards) must match it exactly:

* ``register_peer`` / ``register_peers`` return values (lists, order,
  distances — batch dictionaries in input order);
* the cached neighbour lists after ``propagate_newcomer`` has run (the
  full cache snapshot, so propagation order and evictions are pinned too).

The hypothesis sweep drives the inline planes; the process backend (real
worker processes per example are expensive) runs a long fixed workload at
every shard count in 1–8.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, List, Optional, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ManagementServer, ShardedManagementServer
from repro.core.path import RouterPath, tree_distance
from repro.core.remote import shard_factory_for

MAX_PEERS = 20
MAX_LANDMARKS = 4


# ------------------------------------------------------------------ reference


class ReferencePlane:
    """Brute-force reference for registration results and cache propagation.

    Deliberately naive: O(n) scans, repr computed on the fly, one peer at a
    time.  Shares no code with :mod:`repro.core` beyond the pure-function
    ``tree_distance`` over two stored paths.
    """

    def __init__(self, k: int, distances: Optional[Dict[Tuple[str, str], float]] = None):
        self.k = k
        self.paths: Dict[str, RouterPath] = {}
        self.landmark_of: Dict[str, str] = {}
        self.distances: Dict[Tuple[str, str], float] = {}
        for (a, b), value in (distances or {}).items():
            self.distances[(a, b)] = float(value)
            self.distances[(b, a)] = float(value)
        #: peer -> ordered [(distance, repr(peer), peer)] cache entries.
        self.cache: Dict[str, List[Tuple[float, str, str]]] = {}

    # -- distance arithmetic ------------------------------------------------

    def _landmark_distance(self, a: str, b: str) -> Optional[float]:
        if a == b:
            return 0.0
        return self.distances.get((a, b))

    def _candidates(self, peer_id: str) -> List[Tuple[float, str, str]]:
        """Every reachable candidate of ``peer_id`` in plane order.

        Same-landmark candidates ranked by exact ``dtree`` first; if fewer
        than ``k``, cross-landmark candidates (landmarks with a known
        distance) follow, ranked by the detour estimate.  Both tiers break
        ties on ``repr(candidate)`` — the plane's canonical total order.
        """
        own_path = self.paths[peer_id]
        own_landmark = self.landmark_of[peer_id]
        same = sorted(
            (float(tree_distance(own_path, self.paths[other])), repr(other), other)
            for other in self.paths
            if other != peer_id and self.landmark_of[other] == own_landmark
        )
        if len(same) >= self.k:
            return same
        foreign = sorted(
            (
                float(own_path.hop_count + between + self.paths[other].hop_count),
                repr(other),
                other,
            )
            for other in self.paths
            if self.landmark_of[other] != own_landmark
            for between in [self._landmark_distance(own_landmark, self.landmark_of[other])]
            if between is not None
        )
        return same + foreign

    def _compute(self, peer_id: str) -> List[Tuple[str, float]]:
        return [(peer, distance) for distance, _, peer in self._candidates(peer_id)[: self.k]]

    # -- cache maintenance --------------------------------------------------

    def _store(self, peer_id: str, neighbors: List[Tuple[str, float]]) -> None:
        self.cache[peer_id] = [(distance, repr(peer), peer) for peer, distance in neighbors]

    def _propagate(self, newcomer: str, neighbors: List[Tuple[str, float]]) -> None:
        for peer, distance in neighbors:
            entries = self.cache.get(peer)
            if entries is None:
                continue
            if any(entry[2] == newcomer for entry in entries):
                continue
            if len(entries) >= self.k and distance >= entries[-1][0]:
                continue
            bisect.insort(entries, (distance, repr(newcomer), newcomer))
            del entries[self.k :]

    # -- the public surface the oracle drives -------------------------------

    def register_peer(self, path: RouterPath) -> List[Tuple[str, float]]:
        return self.register_peers([path])[path.peer_id]

    def register_peers(
        self, paths: List[RouterPath]
    ) -> Dict[str, List[Tuple[str, float]]]:
        pending: Dict[str, RouterPath] = {}
        for path in paths:
            # Every occurrence of an already-registered peer goes through a
            # full departure first (the real plane's replace semantics): the
            # peer keeps its last path, moves to the end of the registration
            # order, and its stale cache references are repaired.  ``pending``
            # keeps FIRST-occurrence order — the plane builds it with plain
            # dict overwrites, and the neighbour phase runs in that order.
            if path.peer_id in self.paths:
                self.unregister_peer(path.peer_id)
            self.paths[path.peer_id] = path
            self.landmark_of[path.peer_id] = path.landmark_id
            pending[path.peer_id] = path
        results: Dict[str, List[Tuple[str, float]]] = {}
        for peer_id in pending:
            results[peer_id] = self._compute(peer_id)
        for peer_id in pending:
            self._store(peer_id, results[peer_id])
            self._propagate(peer_id, results[peer_id])
        return results

    def unregister_peer(self, peer_id: str) -> None:
        del self.paths[peer_id]
        del self.landmark_of[peer_id]
        self.cache.pop(peer_id, None)
        for entries in self.cache.values():
            entries[:] = [entry for entry in entries if entry[2] != peer_id]

    def cache_snapshot(self) -> Dict[str, List[Tuple[str, float]]]:
        return {
            owner: [(peer, distance) for distance, _, peer in entries]
            for owner, entries in self.cache.items()
        }


# ------------------------------------------------------------------- drivers


def landmark_name(index: int) -> str:
    return f"lm{index}"


def make_path(peer_index: int, landmark_index: int, shape: Tuple[int, int, int]) -> RouterPath:
    landmark = landmark_name(landmark_index)
    region, pop, access = shape
    routers = [
        f"{landmark}-acc-{region}-{pop}-{access}",
        f"{landmark}-pop-{region}-{pop}",
        f"{landmark}-reg-{region}",
        f"{landmark}-core",
        landmark,
    ]
    return RouterPath.from_routers(f"p{peer_index}", landmark, routers)


def landmark_distances(landmark_count: int) -> Dict[Tuple[str, str], float]:
    return {
        (landmark_name(i), landmark_name(j)): float(1 + abs(i - j))
        for i in range(landmark_count)
        for j in range(landmark_count)
        if i < j
    }


def build_plane(backend: str, shard_count: int, landmark_count: int, with_distances: bool, k: int):
    distances = landmark_distances(landmark_count) if with_distances else None
    if backend == "single":
        plane = ManagementServer(neighbor_set_size=k, landmark_distances=distances)
    else:
        plane = ShardedManagementServer(
            shard_count,
            neighbor_set_size=k,
            landmark_distances=distances,
            shard_factory=shard_factory_for(backend, k),
        )
    for index in range(landmark_count):
        # The landmark's attachment router must equal the landmark-side end
        # of the synthetic paths, or every insert fails root validation.
        plane.register_landmark(landmark_name(index), landmark_name(index))
    return plane


def plane_cache_snapshot(plane) -> Dict[str, List[Tuple[str, float]]]:
    return {
        owner: [(entry.peer_id, entry.distance) for entry in entries]
        for owner, entries in plane._neighbor_cache.items()
    }


def run_oracle_case(backend: str, case) -> None:
    landmark_count, shard_count, with_distances, k, ops = case
    plane = build_plane(backend, shard_count, landmark_count, with_distances, k)
    reference = ReferencePlane(k, landmark_distances(landmark_count) if with_distances else None)
    try:
        for op in ops:
            kind = op[0]
            if kind == "arrive":
                _, peer_index, lm_index, shape = op
                path = make_path(peer_index, lm_index, shape)
                assert plane.register_peer(path) == reference.register_peer(path), op
            elif kind == "batch":
                _, specs = op
                paths = [make_path(*spec) for spec in specs]
                assert plane.register_peers(paths) == reference.register_peers(paths), op
            elif kind == "depart":
                _, peer_index = op
                peer = f"p{peer_index}"
                if plane.has_peer(peer):
                    plane.unregister_peer(peer)
                    reference.unregister_peer(peer)
            else:  # pragma: no cover - strategy bug guard
                raise AssertionError(f"unknown op {op!r}")
            assert plane_cache_snapshot(plane) == reference.cache_snapshot(), op
        assert plane.peers() == list(reference.paths)
    finally:
        plane.close()


@st.composite
def oracle_cases(draw):
    landmark_count = draw(st.integers(1, MAX_LANDMARKS))
    shard_count = draw(st.integers(1, 8))
    with_distances = draw(st.booleans())
    k = draw(st.integers(1, 4))
    shape = st.tuples(st.integers(0, 1), st.integers(0, 1), st.integers(0, 2))
    peer = st.integers(0, MAX_PEERS - 1)
    lm = st.integers(0, landmark_count - 1)
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("arrive"), peer, lm, shape),
                st.tuples(
                    st.just("batch"),
                    st.lists(st.tuples(peer, lm, shape), min_size=1, max_size=8),
                ),
                st.tuples(st.just("depart"), peer),
            ),
            min_size=1,
            max_size=30,
        )
    )
    return landmark_count, shard_count, with_distances, k, ops


class TestArrivalEngineOracle:
    """The new arrival engine vs. the brute-force reference, per backend."""

    @settings(max_examples=40, deadline=None)
    @given(case=oracle_cases())
    def test_single_server_matches_reference(self, case):
        run_oracle_case("single", case)

    @settings(max_examples=25, deadline=None)
    @given(case=oracle_cases())
    def test_sharded_inline_matches_reference(self, case):
        run_oracle_case("inline", case)


class TestArrivalEngineOracleAcceptance:
    """Fixed long workloads: every backend, every shard count 1–8.

    The process backend spawns one worker per shard, so it runs the
    deterministic sweep instead of the hypothesis budget.
    """

    def _fixed_case(self, shard_count: int, seed: int):
        rng = random.Random(seed)
        ops = []
        for _ in range(120):
            roll = rng.random()
            if roll < 0.45:
                ops.append(("arrive", rng.randrange(MAX_PEERS), rng.randrange(3), _shape(rng)))
            elif roll < 0.75:
                ops.append(
                    (
                        "batch",
                        [
                            (rng.randrange(MAX_PEERS), rng.randrange(3), _shape(rng))
                            for _ in range(rng.randrange(1, 7))
                        ],
                    )
                )
            else:
                ops.append(("depart", rng.randrange(MAX_PEERS)))
        return (3, shard_count, True, 3, ops)

    @pytest.mark.parametrize("shard_count", [1, 2, 4, 8])
    def test_inline_sweep(self, shard_count):
        run_oracle_case("inline", self._fixed_case(shard_count, 31_000 + shard_count))

    @pytest.mark.parametrize("shard_count", [1, 2, 4, 8])
    def test_process_sweep(self, shard_count):
        run_oracle_case("process", self._fixed_case(shard_count, 32_000 + shard_count))

    def test_single_server_sweep(self):
        run_oracle_case("single", self._fixed_case(1, 33_000))


def _shape(rng: random.Random) -> Tuple[int, int, int]:
    return (rng.randrange(2), rng.randrange(2), rng.randrange(3))
