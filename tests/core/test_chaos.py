"""Fault-plan semantics and the chaos backend's injection contract.

The byte-identity oracle (``test_sharded_equivalence.py``) proves the plane
*converges* through scripted crashes; this module proves the injection
machinery itself — fault scheduling (one-time vs persistent, op-name
filters, determinism), each fault kind's observable effect, and the
journaled-but-unacked divergence that makes ``drop_reply`` unsuitable for
the byte-identity oracle.
"""

from __future__ import annotations

import pytest

from repro.core import ManagementServer
from repro.core.chaos import FAULT_KINDS, ChaosShardBackend, Fault, FaultPlan
from repro.core.path import RouterPath
from repro.core.remote import ProcessShardBackend, RecoveryPolicy
from repro.exceptions import ShardUnavailableError


def simple_path(peer, landmark, access="a1"):
    return RouterPath.from_routers(
        peer, landmark, [f"{landmark}-{access}", f"{landmark}-core", landmark]
    )


def chaos_backend(plan, recovery=True, **kwargs):
    policy = (
        RecoveryPolicy(max_restarts=2, backoff_base_s=0.0, sleep=lambda _delay: None)
        if recovery
        else None
    )
    inner = ProcessShardBackend(
        neighbor_set_size=3, name="chaos-under-test", recovery=policy, **kwargs
    )
    return ChaosShardBackend(inner, plan)


class TestFault:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Fault(at_op=1, kind="meteor-strike")

    def test_rejects_non_positive_at_op(self):
        with pytest.raises(ValueError):
            Fault(at_op=0, kind="error")

    def test_all_kinds_construct(self):
        # Kinds with required options (validated at __post_init__) get them.
        required = {
            "delay": {"delay_s": 0.1},
            "partition": {"window_ops": 1},
            "reorder": {"op_name": "insert_paths"},
        }
        for kind in FAULT_KINDS:
            assert Fault(at_op=1, kind=kind, **required.get(kind, {})).kind == kind

    def test_delay_requires_positive_delay_s(self):
        with pytest.raises(ValueError):
            Fault(at_op=1, kind="delay")
        with pytest.raises(ValueError):
            Fault(at_op=1, kind="delay", delay_s=-0.5)

    def test_delay_s_rejected_on_other_kinds(self):
        with pytest.raises(ValueError):
            Fault(at_op=1, kind="drop", delay_s=0.1)

    def test_partition_requires_a_window(self):
        with pytest.raises(ValueError):
            Fault(at_op=1, kind="partition")
        with pytest.raises(ValueError):
            Fault(at_op=1, kind="partition", window_ops=0)

    def test_window_ops_rejected_on_other_kinds(self):
        with pytest.raises(ValueError):
            Fault(at_op=1, kind="drop", window_ops=2)

    def test_reorder_requires_op_name(self):
        with pytest.raises(ValueError):
            Fault(at_op=1, kind="reorder")

    def test_partition_window_end(self):
        assert Fault(at_op=3, kind="partition", window_ops=4).window_end == 7
        assert Fault(at_op=3, kind="error").window_end == 4


class TestFaultPlan:
    def test_one_time_fault_fires_once_at_its_op(self):
        plan = FaultPlan([Fault(at_op=3, kind="error")])
        assert plan.faults_for("op") == []
        assert plan.faults_for("op") == []
        assert [fault.kind for fault in plan.faults_for("op")] == ["error"]
        assert plan.faults_for("op") == []  # consumed
        assert plan.fired == [(3, "error", "op")]
        assert plan.pending == ()

    def test_fires_at_first_op_past_due_not_only_exact_match(self):
        # An op-name filter can make the exact at_op pass by; the fault
        # fires at the first *matching* op at or after it.
        plan = FaultPlan([Fault(at_op=2, kind="error", op_name="insert_paths")])
        assert plan.faults_for("local_closest") == []  # op 1
        assert plan.faults_for("local_closest") == []  # op 2: name mismatch
        due = plan.faults_for("insert_paths")  # op 3: fires
        assert [fault.kind for fault in due] == ["error"]
        assert plan.fired == [(3, "error", "insert_paths")]

    def test_persistent_fault_keeps_firing(self):
        plan = FaultPlan([Fault(at_op=2, kind="error", persistent=True)])
        assert plan.faults_for("op") == []
        for count in (2, 3, 4):
            assert [fault.kind for fault in plan.faults_for("op")] == ["error"]
        assert [entry[0] for entry in plan.fired] == [2, 3, 4]
        assert len(plan.pending) == 1

    def test_partition_fires_on_every_op_in_window_then_heals(self):
        plan = FaultPlan([Fault(at_op=2, kind="partition", window_ops=2)])
        assert plan.faults_for("op") == []  # op 1: before the window
        assert [fault.kind for fault in plan.faults_for("op")] == ["partition"]  # op 2
        assert [fault.kind for fault in plan.faults_for("op")] == ["partition"]  # op 3
        assert plan.faults_for("op") == []  # op 4: healed
        assert plan.pending == ()
        assert [entry[0] for entry in plan.fired] == [2, 3]

    def test_partition_window_is_positional_but_fires_only_on_matching_ops(self):
        # The window covers counted ops [2, 4) regardless of name; only the
        # matching op inside it actually fires.
        plan = FaultPlan(
            [Fault(at_op=2, kind="partition", window_ops=2, op_name="insert_paths")]
        )
        assert plan.faults_for("insert_paths") == []  # op 1
        assert plan.faults_for("local_closest") == []  # op 2: in window, wrong name
        assert [fault.kind for fault in plan.faults_for("insert_paths")] == ["partition"]
        assert plan.faults_for("insert_paths") == []  # op 4: window closed
        assert plan.fired == [(3, "partition", "insert_paths")]

    def test_persistent_partition_never_heals(self):
        plan = FaultPlan([Fault(at_op=2, kind="partition", window_ops=1, persistent=True)])
        assert plan.faults_for("op") == []
        for count in (2, 3, 4, 5):
            assert [fault.kind for fault in plan.faults_for("op")] == ["partition"]
        assert len(plan.pending) == 1

    def test_schedule_is_deterministic(self):
        def run():
            plan = FaultPlan(
                [Fault(at_op=2, kind="error"), Fault(at_op=4, kind="delay", delay_s=0.1)]
            )
            for _ in range(6):
                plan.faults_for("op")
            return plan.fired

        assert run() == run()


class TestChaosShardBackend:
    def test_crash_before_heals_and_never_loses_the_op(self):
        reference = ManagementServer(neighbor_set_size=3, maintain_cache=False)
        reference.register_landmark("lmA", "lmA")
        with chaos_backend(FaultPlan([Fault(at_op=2, kind="crash_before")])) as shard:
            shard.register_landmark("lmA", "lmA")  # op 1
            path = simple_path("p0", "lmA")
            shard.insert_paths([path])  # op 2: worker killed, then self-heals
            reference.insert_paths([path])
            assert shard.plan.fired == [(2, "crash_before", "insert_paths")]
            assert shard.supervisor.epoch == 2
            assert shard.local_closest("p0", 3) == reference.local_closest("p0", 3)

    def test_crash_after_journals_the_op_before_the_worker_dies(self):
        with chaos_backend(FaultPlan([Fault(at_op=2, kind="crash_after")])) as shard:
            shard.register_landmark("lmA", "lmA")
            shard.insert_paths([simple_path("p0", "lmA")])  # acked, then killed
            assert [op for op, _ in shard.supervisor.journal] == [
                "register_landmark",
                "insert_paths",
            ]
            assert not shard.supervisor.process.is_alive()
            # The next call heals via restart+replay — including that op.
            assert [pair[0] for pair in shard.local_closest("p0", 3)] == []
            assert shard.supervisor.epoch == 2

    def test_drop_reply_diverges_journal_from_caller_view(self):
        """The worker applied and journaled the op while the caller saw a
        typed failure — exactly why drop_reply is excluded from the
        byte-identity oracle's plans."""
        with chaos_backend(
            FaultPlan([Fault(at_op=2, kind="drop_reply")]), recovery=False
        ) as shard:
            shard.register_landmark("lmA", "lmA")
            with pytest.raises(ShardUnavailableError) as error:
                shard.insert_paths([simple_path("p0", "lmA")])
            assert "dropped" in str(error.value)
            # Caller saw failure, yet the op landed and was journaled.
            assert [op for op, _ in shard.supervisor.journal] == [
                "register_landmark",
                "insert_paths",
            ]
            assert shard.local_closest("p0", 3) == []

    def test_delay_sleeps_through_the_injected_clock(self):
        naps = []
        plan = FaultPlan([Fault(at_op=1, kind="delay", delay_s=0.25)])
        inner = ProcessShardBackend(neighbor_set_size=3, name="slow")
        shard = ChaosShardBackend(inner, plan, sleep=naps.append)
        with shard:
            shard.register_landmark("lmA", "lmA")
            assert naps == [0.25]
            assert shard.plan.fired == [(1, "delay", "register_landmark")]

    def test_error_fault_raises_typed_without_touching_the_worker(self):
        with chaos_backend(
            FaultPlan([Fault(at_op=2, kind="error")]), recovery=False
        ) as shard:
            shard.register_landmark("lmA", "lmA")
            epoch = shard.supervisor.epoch
            with pytest.raises(ShardUnavailableError) as error:
                shard.insert_paths([simple_path("p0", "lmA")])
            assert "chaos-under-test" in str(error.value)
            assert shard.supervisor.process.is_alive()
            assert shard.supervisor.epoch == epoch  # no restart happened
            # The op never reached the worker, so it must not be journaled.
            assert [op for op, _ in shard.supervisor.journal] == ["register_landmark"]

    def test_crash_fault_on_inline_backend_fails_typed(self):
        inline = ManagementServer(neighbor_set_size=3, maintain_cache=False)
        shard = ChaosShardBackend(inline, FaultPlan([Fault(at_op=1, kind="crash_before")]))
        with pytest.raises(ShardUnavailableError) as error:
            shard.register_landmark("lmA", "lmA")
        assert "supervised shard backend" in str(error.value)

    def test_lifecycle_calls_are_never_faulted(self):
        plan = FaultPlan([Fault(at_op=1, kind="error", persistent=True)])
        with chaos_backend(plan, recovery=False) as shard:
            before = plan.ops_seen
            assert shard.health_check()
            shard.restart()
            assert plan.ops_seen == before  # lifecycle traffic is not counted

    def test_diagnostics_pass_through_to_the_inner_backend(self):
        with chaos_backend(FaultPlan()) as shard:
            assert shard.name == "chaos-under-test"
            assert shard.supervisor.epoch == 1
            assert shard.fill_chunk_size == shard.inner.fill_chunk_size


def inline_chaos(plan):
    """Chaos wrapper around an in-process server (wire faults need no worker)."""
    server = ManagementServer(neighbor_set_size=3, maintain_cache=False)
    return server, ChaosShardBackend(server, plan)


class TestWireFaultsOnBackend:
    """The lossy-wire fault kinds applied to a shard backend's call stream.

    The same vocabulary scripts the event sim's ``NetworkFaultPlan``
    (tests/sim/test_network.py); these tests pin the backend half of the
    contract documented in ``repro.core.chaos``.
    """

    def test_drop_never_reaches_the_worker_and_a_bare_retry_succeeds(self):
        server, shard = inline_chaos(FaultPlan([Fault(at_op=2, kind="drop")]))
        shard.register_landmark("lmA", "lmA")
        with pytest.raises(ShardUnavailableError) as error:
            shard.insert_paths([simple_path("p0", "lmA")])
        assert "lost" in str(error.value)
        # Unlike drop_reply, the request never reached the plane — so the
        # caller's view and the plane agree, and a bare retry converges.
        assert server.peer_count == 0
        shard.insert_paths([simple_path("p0", "lmA")])
        assert server.has_peer("p0")

    def test_partition_fails_every_call_in_the_window_then_heals(self):
        server, shard = inline_chaos(
            FaultPlan([Fault(at_op=2, kind="partition", window_ops=2)])
        )
        shard.register_landmark("lmA", "lmA")  # op 1
        for _attempt in (2, 3):
            with pytest.raises(ShardUnavailableError):
                shard.insert_paths([simple_path("p0", "lmA")])
        shard.insert_paths([simple_path("p0", "lmA")])  # op 4: healed
        assert server.has_peer("p0")
        assert [entry[0] for entry in shard.plan.fired] == [2, 3]

    def test_duplicate_applies_the_op_twice_and_registration_dedups(self):
        server, shard = inline_chaos(FaultPlan([Fault(at_op=2, kind="duplicate")]))
        shard.register_landmark("lmA", "lmA")
        shard.insert_paths([simple_path("p0", "lmA")])
        # register_peer unregisters-then-reinserts, so the duplicated apply
        # leaves exactly one registration — at-least-once delivery is safe.
        assert server.has_peer("p0")
        assert server.peer_count == 1

    def test_reorder_defers_a_one_way_op_until_the_next_call(self):
        server, shard = inline_chaos(
            FaultPlan([Fault(at_op=2, kind="reorder", op_name="insert_paths")])
        )
        shard.register_landmark("lmA", "lmA")  # op 1
        shard.insert_paths([simple_path("p0", "lmA")])  # op 2: held, not applied
        assert server.peer_count == 0
        shard.insert_paths([simple_path("p1", "lmA")])  # op 3: applied, then flush
        assert server.has_peer("p1")
        assert server.has_peer("p0")  # the held insert arrived late, not lost

    def test_reorder_on_a_value_returning_op_raises_typed(self):
        _server, shard = inline_chaos(
            FaultPlan([Fault(at_op=1, kind="reorder", op_name="local_closest")])
        )
        with pytest.raises(ShardUnavailableError) as error:
            shard.local_closest("p0", 3)
        assert "one-way" in str(error.value)

    def test_close_flushes_reordered_ops(self):
        server, shard = inline_chaos(
            FaultPlan([Fault(at_op=2, kind="reorder", op_name="insert_paths")])
        )
        shard.register_landmark("lmA", "lmA")
        shard.insert_paths([simple_path("p0", "lmA")])  # held
        shard.close()  # reordered means late, not lost
        assert server.has_peer("p0")

    def test_persistent_drop_with_op_name_filter_targets_one_stream(self):
        server, shard = inline_chaos(
            FaultPlan([Fault(at_op=1, kind="drop", op_name="insert_paths", persistent=True)])
        )
        shard.register_landmark("lmA", "lmA")  # unfiltered op passes
        for _attempt in range(2):
            with pytest.raises(ShardUnavailableError):
                shard.insert_paths([simple_path("p0", "lmA")])
        assert server.peer_count == 0
        assert {entry[2] for entry in shard.plan.fired} == {"insert_paths"}
