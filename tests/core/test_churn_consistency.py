"""Churn tests: the reverse neighbour index, O(k) departures, batch arrivals.

The management server must keep ``_referenced_by`` (peer -> peers whose
cached list contains it) exactly consistent with the cached lists through
arbitrary interleavings of joins, departures and re-registrations — and a
departure may only touch the lists that actually reference the departed
peer, never the whole population.

The sharded plane (:class:`~repro.core.sharded.ShardedManagementServer`)
must uphold the same invariants when the churning peers and the lists that
reference them live on *different* shards: departures repair cross-shard
min-hop orderings, and dry lists lazily refill from remote shards.
"""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro.core.management_server import ManagementServer, NeighborEntry
from repro.core.path import RouterPath
from repro.core.sharded import ConsistentHashRing, ShardedManagementServer


def path(peer, routers, landmark="lmA"):
    return RouterPath.from_routers(peer, landmark, routers)


def synthetic_path(index: int, rng: random.Random, landmark="lmA") -> RouterPath:
    region, pop, access = rng.randrange(6), rng.randrange(10), rng.randrange(20)
    routers = [
        f"access-{region}-{pop}-{access}",
        f"pop-{region}-{pop}",
        f"region-{region}",
        "core",
        landmark,
    ]
    return RouterPath.from_routers(f"peer{index}", landmark, routers)


def assert_reverse_index_consistent(server: ManagementServer) -> None:
    """The reverse index must mirror the cached lists exactly."""
    expected: Dict = {}
    for owner, entries in server._neighbor_cache.items():
        for entry in entries:
            expected.setdefault(entry.peer_id, set()).add(owner)
    assert server._referenced_by == expected
    # Every cached entry references a live peer, and every cache owner is live.
    for owner, entries in server._neighbor_cache.items():
        assert server.has_peer(owner)
        for entry in entries:
            assert server.has_peer(entry.peer_id)


@pytest.fixture()
def server() -> ManagementServer:
    server = ManagementServer(neighbor_set_size=3)
    server.register_landmark("lmA", "lmA")
    return server


class TestReverseIndex:
    def test_registration_populates_reverse_index(self, server):
        server.register_peer(path("p1", ["a1", "core", "lmA"]))
        server.register_peer(path("p2", ["a1", "core", "lmA"]))
        assert server.referencing_peers("p1") == {"p2"}
        assert server.referencing_peers("p2") == {"p1"}
        assert_reverse_index_consistent(server)

    def test_departure_updates_only_referencing_lists(self, server):
        for name, routers in [
            ("p1", ["a1", "core", "lmA"]),
            ("p2", ["a1", "core", "lmA"]),
            ("p3", ["b1", "core", "lmA"]),
            ("p4", ["b1", "core", "lmA"]),
        ]:
            server.register_peer(path(name, routers))
        referencing = server.referencing_peers("p4")
        server.stats.reset()
        server.unregister_peer("p4")
        assert server.stats.departure_updates == len(referencing)
        assert_reverse_index_consistent(server)

    def test_departure_cost_bounded_by_references_not_population(self, server):
        """Counter-based complexity check: cost tracks k·c, not n."""
        rng = random.Random(11)
        for index in range(300):
            server.register_peer(synthetic_path(index, rng))
        victims = rng.sample(server.peers(), 50)
        for victim in victims:
            referencing = len(server.referencing_peers(victim))
            server.stats.reset()
            server.unregister_peer(victim)
            assert server.stats.departure_updates == referencing
            # A peer can appear in far fewer lists than there are peers; the
            # bound that matters is that the work equals the reference count,
            # which stays O(k·c) rather than O(n).
            assert server.stats.departure_updates < server.peer_count
        assert_reverse_index_consistent(server)

    def test_interleaved_join_leave_reregister_stays_consistent(self, server):
        rng = random.Random(7)
        alive: List[str] = []
        next_index = 0
        for step in range(400):
            action = rng.random()
            if action < 0.5 or len(alive) < 3:
                server.register_peer(synthetic_path(next_index, rng))
                alive.append(f"peer{next_index}")
                next_index += 1
            elif action < 0.8:
                victim = alive.pop(rng.randrange(len(alive)))
                server.unregister_peer(victim)
            else:
                survivor = rng.choice(alive)
                index = int(survivor.removeprefix("peer"))
                server.register_peer(synthetic_path(index, rng))
            if step % 25 == 0:
                assert_reverse_index_consistent(server)
        assert_reverse_index_consistent(server)
        assert server.peer_count == len(alive)

    def test_lists_that_run_dry_are_refilled_on_query(self, server):
        for name in ("a", "b", "c", "d", "e"):
            server.register_peer(path(name, ["a1", "core", "lmA"]))
        # a's list is [b, c, d]; remove two of them so it runs dry.
        server.unregister_peer("b")
        server.unregister_peer("c")
        server.stats.reset()
        neighbors = server.closest_peers("a")
        assert [peer for peer, _ in neighbors] == ["d", "e"]
        assert server.stats.cache_refills == 1
        assert server.stats.cache_hits == 0
        # The refilled list is cached (and indexed) for the next query.
        again = server.closest_peers("a")
        assert again == neighbors
        assert server.stats.cache_hits == 1
        assert_reverse_index_consistent(server)

    def test_cache_disabled_keeps_reverse_index_empty(self):
        server = ManagementServer(neighbor_set_size=3, maintain_cache=False)
        server.register_landmark("lmA", "lmA")
        rng = random.Random(5)
        for index in range(30):
            server.register_peer(synthetic_path(index, rng))
        server.unregister_peer("peer0")
        assert server._referenced_by == {}
        assert server._neighbor_cache == {}


class TestBatchRegistration:
    def test_batch_matches_tree_state_of_sequential(self, server):
        batch = [synthetic_path(index, random.Random(21)) for index in range(40)]
        results = server.register_peers(batch)
        assert set(results) == {p.peer_id for p in batch}
        assert server.peer_count == 40
        assert server.stats.registrations == 40
        assert_reverse_index_consistent(server)

    def test_batch_members_see_each_other(self, server):
        """Co-arriving peers appear in each other's lists immediately."""
        batch = [
            path("p1", ["a1", "core", "lmA"]),
            path("p2", ["a1", "core", "lmA"]),
            path("p3", ["a1", "core", "lmA"]),
        ]
        results = server.register_peers(batch)
        # Even the FIRST batch member's list contains the later ones — the
        # sequential API could never produce that for p1.
        assert {peer for peer, _ in results["p1"]} == {"p2", "p3"}
        assert_reverse_index_consistent(server)

    def test_batch_reregistration_keeps_last_path(self, server):
        batch = [
            path("p1", ["a1", "core", "lmA"]),
            path("p2", ["b1", "core", "lmA"]),
            path("p1", ["b1", "core", "lmA"]),
        ]
        server.register_peers(batch)
        assert server.peer_count == 2
        assert server.peer_path("p1").access_router == "b1"
        assert_reverse_index_consistent(server)

    def test_batch_rejects_unknown_landmark_before_mutation(self, server):
        batch = [
            path("p1", ["a1", "core", "lmA"]),
            path("bad", ["x", "lmZ"], landmark="lmZ"),
        ]
        from repro.exceptions import RegistrationError

        with pytest.raises(RegistrationError):
            server.register_peers(batch)
        assert server.peer_count == 0

    def test_batch_rejects_root_mismatch_before_mutation(self, server):
        """A path rooted at the wrong router fails the whole batch up front."""
        batch = [
            path("p1", ["a1", "core", "lmA"]),
            path("bad", ["x", "not-lmA"]),  # claims lmA but ends elsewhere
        ]
        from repro.exceptions import RegistrationError

        with pytest.raises(RegistrationError):
            server.register_peers(batch)
        assert server.peer_count == 0
        assert server._neighbor_cache == {}

    def test_batch_then_departures_round_trip(self, server):
        rng = random.Random(31)
        batch = [synthetic_path(index, rng) for index in range(60)]
        server.register_peers(batch)
        for victim in rng.sample(server.peers(), 30):
            server.unregister_peer(victim)
        assert server.peer_count == 30
        assert_reverse_index_consistent(server)
        for peer in server.peers():
            neighbors = server.closest_peers(peer)
            assert all(server.has_peer(neighbor) for neighbor, _ in neighbors)


def landmarks_on_distinct_shards(shard_count: int, needed: int) -> List[str]:
    """Landmark names that the ring provably places on ``needed`` distinct shards."""
    ring = ConsistentHashRing(shard_count)
    found: Dict[int, str] = {}
    index = 0
    while len(found) < needed:
        name = f"lm{index}"
        shard = ring.node_for(name)
        if shard not in found:
            found[shard] = name
        index += 1
    return [found[shard] for shard in sorted(found)]


def remote_path(peer, landmark, access="a1"):
    return RouterPath.from_routers(
        peer, landmark, [f"{landmark}-{access}", f"{landmark}-core", landmark]
    )


class TestShardedChurn:
    """Cross-shard departures and lazy refills on the sharded plane."""

    def make_server(self, shard_count=2, k=3):
        local, remote = landmarks_on_distinct_shards(shard_count, needed=2)
        server = ShardedManagementServer(
            shard_count,
            neighbor_set_size=k,
            landmark_distances={(local, remote): 4.0},
        )
        server.register_landmark(local, local)
        server.register_landmark(remote, remote)
        assert server.shard_of(local) != server.shard_of(remote)
        return server, local, remote

    def fill_cross_shard(self, server, local, remote, remote_count=4):
        """One querier alone under ``local``; candidates live under ``remote``."""
        server.register_peers(
            [remote_path("q", local)]
            + [remote_path(f"r{i}", remote, access=f"a{i}") for i in range(remote_count)]
        )
        return [peer for peer, _ in server.closest_peers("q")]

    def test_cross_shard_fill_populates_querier_list(self):
        server, local, remote = self.make_server()
        neighbors = self.fill_cross_shard(server, local, remote)
        assert len(neighbors) == 3
        assert all(server.peer_landmark(peer) == remote for peer in neighbors)
        assert_reverse_index_consistent(server)

    def test_departure_on_remote_shard_repairs_cross_shard_lists(self):
        server, local, remote = self.make_server()
        neighbors = self.fill_cross_shard(server, local, remote)
        victim = neighbors[0]
        referencing = server.referencing_peers(victim)
        assert "q" in referencing  # the querier's list crosses the shard boundary
        server.stats.reset()
        server.unregister_peer(victim)
        assert server.stats.departure_updates == len(referencing)
        assert victim not in [peer for peer, _ in server.closest_peers("q")]
        assert_reverse_index_consistent(server)

    def test_departure_repairs_remote_min_hop_ordering(self):
        server, local, remote = self.make_server()
        neighbors = self.fill_cross_shard(server, local, remote)
        victim = neighbors[0]
        remote_shard = server.shards[server.shard_of(remote)]
        assert victim in [entry[2] for entry in remote_shard._hops_ordering(remote)]
        server.unregister_peer(victim)
        # The remote shard's min-hop ordering (the fill candidate source)
        # must not keep serving the departed peer.
        assert victim not in [entry[2] for entry in remote_shard._hops_ordering(remote)]
        refreshed = server.closest_peers("q", k=4)
        assert victim not in [peer for peer, _ in refreshed]

    def test_dry_list_refills_from_remote_shard(self):
        server, local, remote = self.make_server()
        neighbors = self.fill_cross_shard(server, local, remote, remote_count=5)
        # Remove two cached neighbours so the querier's list runs dry.
        server.unregister_peer(neighbors[0])
        server.unregister_peer(neighbors[1])
        server.stats.reset()
        refilled = server.closest_peers("q")
        assert server.stats.cache_hits == 0
        assert server.stats.cache_refills == 1
        assert len(refilled) == 3
        assert all(server.has_peer(peer) for peer, _ in refilled)
        # The refill candidates all live on the other shard.
        assert all(server.peer_shard(peer) != server.peer_shard("q") for peer, _ in refilled)
        again = server.closest_peers("q")
        assert again == refilled
        assert server.stats.cache_hits == 1
        assert_reverse_index_consistent(server)

    def test_interleaved_sharded_churn_stays_consistent(self):
        server, local, remote = self.make_server(shard_count=4)
        rng = random.Random(17)
        landmarks = [local, remote]
        alive: List[str] = []
        next_index = 0
        for step in range(300):
            action = rng.random()
            if action < 0.5 or len(alive) < 3:
                landmark = landmarks[rng.randrange(2)]
                server.register_peer(
                    remote_path(f"peer{next_index}", landmark, access=f"a{rng.randrange(6)}")
                )
                alive.append(f"peer{next_index}")
                next_index += 1
            elif action < 0.8:
                victim = alive.pop(rng.randrange(len(alive)))
                server.unregister_peer(victim)
            else:
                server.closest_peers(rng.choice(alive))
            if step % 25 == 0:
                assert_reverse_index_consistent(server)
        assert_reverse_index_consistent(server)
        assert server.peer_count == len(alive)


class TestPropagationOrderedInsert:
    def test_propagate_keeps_lists_sorted(self, server):
        rng = random.Random(13)
        for index in range(80):
            server.register_peer(synthetic_path(index, rng))
        for entries in server._neighbor_cache.values():
            keys = [entry.as_tuple() for entry in entries]
            assert keys == sorted(keys)
            assert len(entries) <= server.neighbor_set_size

    def test_eviction_updates_reverse_index(self, server):
        # Fill origin's list, then add closer peers until someone is evicted.
        server.register_peer(path("origin", ["a1", "core", "lmA"]))
        server.register_peer(path("far", ["z1", "z2", "z3", "core", "lmA"]))
        for index in range(4):
            server.register_peer(path(f"near{index}", ["a1", "core", "lmA"]))
        entries = {entry.peer_id for entry in server._neighbor_cache["origin"]}
        assert "far" not in entries  # evicted by the nearer arrivals
        assert "origin" not in server.referencing_peers("far") or "far" in entries
        assert_reverse_index_consistent(server)
