"""Oracle tests for the count-guided best-first ``closest_peers`` query.

The query must return exactly what a brute-force ranking over
``all_pairs_tree_distance`` would (same peers, same distances, same
``(dtree, repr)`` tie-break order), while visiting far fewer trie nodes than
the subtree scans the pre-optimisation implementation performed.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.path import PeerId, RouterPath
from repro.core.path_tree import PathTree


def _oracle_ranking(tree: PathTree, origin: PeerId, k: int) -> List[Tuple[PeerId, int]]:
    """Brute-force k-closest via the exhaustive all-pairs distances."""
    all_pairs = tree.all_pairs_tree_distance()
    distances: Dict[PeerId, int] = {}
    for (peer_a, peer_b), distance in all_pairs.items():
        if peer_a == origin:
            distances[peer_b] = distance
        elif peer_b == origin:
            distances[peer_a] = distance
    ranked = sorted(distances.items(), key=lambda item: (item[1], repr(item[0])))
    return ranked[:k]


@st.composite
def random_tree(draw):
    """A populated path tree over random, prefix-sharing router paths."""
    n_peers = draw(st.integers(2, 25))
    tree = PathTree(landmark_id="lmk", landmark_router="lmk")
    for index in range(n_peers):
        depth = draw(st.integers(1, 7))
        branch = [f"r{draw(st.integers(0, 3))}-{level}" for level in range(depth)]
        seen, unique = set(), []
        for router in branch + ["lmk"]:
            if router not in seen:
                seen.add(router)
                unique.append(router)
        tree.insert(RouterPath.from_routers(f"peer{index}", "lmk", unique))
    # Random churn so pruned/reinserted shapes are covered too.
    removals = draw(st.integers(0, n_peers // 2))
    for _ in range(removals):
        victims = tree.peers()
        tree.remove(victims[draw(st.integers(0, len(victims) - 1))])
    return tree


@settings(max_examples=60, deadline=None)
@given(tree=random_tree(), k=st.integers(1, 8))
def test_property_matches_brute_force_oracle(tree, k):
    """closest_peers == the brute-force all-pairs ranking, byte for byte."""
    if tree.peer_count < 2:
        return
    for origin in tree.peers():
        assert tree.closest_peers(origin, k=k) == _oracle_ranking(tree, origin, k)


@settings(max_examples=30, deadline=None)
@given(tree=random_tree(), k=st.integers(1, 5))
def test_property_exclude_set_respected_against_oracle(tree, k):
    if tree.peer_count < 3:
        return
    origin = tree.peers()[0]
    excluded = set(tree.peers()[1:2])
    result = tree.closest_peers(origin, k=k, exclude=excluded)
    oracle = [entry for entry in _oracle_ranking(tree, origin, tree.peer_count) if entry[0] not in excluded]
    assert result == oracle[:k]


class TestVisitInstrumentation:
    def _skewed_tree(self, heavy_peers: int = 400) -> PathTree:
        """Origin on a tiny branch next to one huge, deep sibling chain.

        The sibling subtree is a long spine with one peer per node, so peer
        distances from the origin strictly increase with depth.  The
        pre-optimisation query scanned the entire spine as soon as the walk
        reached the shared ancestor; the count-guided search must stop after
        the handful of closest candidates.
        """
        tree = PathTree(landmark_id="lmk", landmark_router="lmk")
        tree.insert(RouterPath.from_routers("origin", "lmk", ["o1", "fork", "core", "lmk"]))
        tree.insert(RouterPath.from_routers("buddy", "lmk", ["o1", "fork", "core", "lmk"]))
        spine = [f"s{index}" for index in range(heavy_peers)]
        for index in range(heavy_peers):
            routers = list(reversed(spine[: index + 1])) + ["fork", "core", "lmk"]
            tree.insert(RouterPath.from_routers(f"deep{index}", "lmk", routers))
        return tree

    def test_skewed_tree_visits_fraction_of_nodes(self):
        tree = self._skewed_tree()
        total_nodes = tree.router_count
        result = tree.closest_peers("origin", k=3)
        assert len(result) == 3
        assert tree.last_query_visits > 0
        # The old implementation walked every node of the heavy sibling
        # spine (plus the origin branch) — on this shape, nearly every
        # router in the tree.  The frontier search must do far better.
        assert tree.last_query_visits < total_nodes // 10

    def test_visits_accumulate(self):
        tree = self._skewed_tree(heavy_peers=50)
        tree.closest_peers("origin", k=2)
        first = tree.last_query_visits
        tree.closest_peers("origin", k=2)
        assert tree.last_query_visits == first
        assert tree.total_query_visits >= 2 * first

    def test_exhaustive_query_visits_at_most_every_node(self):
        tree = self._skewed_tree(heavy_peers=30)
        tree.closest_peers("origin", k=10_000)
        assert tree.last_query_visits <= tree.router_count

    def test_empty_subtrees_never_visited(self):
        """Routers left peerless by departures are skipped via the counts."""
        tree = PathTree(landmark_id="lmk", landmark_router="lmk")
        tree.insert(RouterPath.from_routers("a", "lmk", ["a1", "core", "lmk"]))
        tree.insert(RouterPath.from_routers("b", "lmk", ["b1", "core", "lmk"]))
        tree.insert(RouterPath.from_routers("c", "lmk", ["c1", "c2", "core", "lmk"]))
        result = tree.closest_peers("a", k=2)
        assert [peer for peer, _ in result] == ["b", "c"]
        with pytest.raises(Exception):
            tree.closest_peers("ghost", k=1)
