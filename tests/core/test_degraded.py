"""Degraded-mode serving: reads narrow gracefully, mutations fail typed.

While a shard is down (and no recovery policy is healing it), the sharded
plane's ``closest_peers`` serves a best-effort answer assembled from the
coordinator's neighbour cache and the healthy shards' candidate streams,
tagged as a :class:`~repro.core.DegradedResult` and counted in
``stats.degraded_queries``.  Degraded answers are never cached.  Mutations
never degrade: they keep failing typed and atomic.  ``health()`` reports
per-shard liveness so operators can tell degraded from healthy serving.

The tests pin two landmarks that consistent-hash onto *different* shards of
a two-shard plane (asserted, not assumed), and query with
``k > neighbor_set_size`` so the cache's serve-from-warm path cannot mask
the computation (warm queries keep answering through an outage by design —
covered in ``test_remote_backend.py``).
"""

from __future__ import annotations

import pytest

from repro.core import (
    DegradedResult,
    ManagementServer,
    PlaneHealth,
    ShardedManagementServer,
    ShardHealth,
)
from repro.core.path import RouterPath
from repro.core.remote import process_shard_factory
from repro.exceptions import ShardUnavailableError

# With two shards, "lmA" and "lmC" land on different shards of the
# consistent-hash ring (make_plane asserts this instead of trusting it).
LM_X, LM_Y = "lmA", "lmC"
BIG_K = 6  # > neighbor_set_size: forces the compute path past the cache


def simple_path(peer, landmark, access="a1"):
    return RouterPath.from_routers(
        peer, landmark, [f"{landmark}-{access}", f"{landmark}-core", landmark]
    )


def make_plane(k=3, degraded_reads=True, maintain_cache=True):
    server = ShardedManagementServer(
        2,
        neighbor_set_size=k,
        maintain_cache=maintain_cache,
        landmark_distances={(LM_X, LM_Y): 4.0},
        shard_factory=process_shard_factory(k),
        degraded_reads=degraded_reads,
    )
    for landmark in (LM_X, LM_Y):
        server.register_landmark(landmark, landmark)
    assert server.shard_of(LM_X) != server.shard_of(LM_Y)
    return server


def seed(server, count=6):
    """Even peers under LM_X, odd peers under LM_Y."""
    server.register_peers(
        [
            simple_path(f"p{i}", LM_X if i % 2 == 0 else LM_Y, access=f"a{i % 3}")
            for i in range(count)
        ]
    )


def kill_shard_of(server, landmark):
    victim = server.shards[server.shard_of(landmark)]
    victim.supervisor.process.kill()
    victim.supervisor.process.join()
    return victim


class TestDegradedReads:
    def test_degrades_seeded_from_the_coordinator_cache(self):
        server = make_plane()
        try:
            seed(server)
            warm = server.closest_peers("p0")  # the cached best-known answer
            assert warm
            kill_shard_of(server, LM_X)  # p0's home shard
            answer = server.closest_peers("p0", k=BIG_K)
            assert isinstance(answer, DegradedResult)
            # The cached entries lead the degraded answer, in cache order.
            assert list(answer)[: len(warm)] == list(warm)
            assert answer.reason  # carries the failure it degraded around
            assert server.stats.degraded_queries == 1
        finally:
            server.close()

    def test_cold_query_assembles_from_the_healthy_shard(self):
        server = make_plane(maintain_cache=False)
        try:
            seed(server, count=8)
            victim = kill_shard_of(server, LM_X)  # p0's home shard
            answer = server.closest_peers("p0", k=BIG_K)
            assert isinstance(answer, DegradedResult)
            returned = [peer for peer, _ in answer]
            assert returned  # narrowed, never empty while others are healthy
            assert len(returned) == len(set(returned))  # no duplicates
            for peer in returned:  # only survivors can appear
                assert server.shards[server.peer_shard(peer)] is not victim
                assert server.peer_landmark(peer) == LM_Y
        finally:
            server.close()

    def test_degraded_answers_are_never_cached(self):
        server = make_plane()
        try:
            seed(server)
            before = [
                (entry.peer_id, entry.distance)
                for entry in server._neighbor_cache.get("p0") or ()
            ]
            kill_shard_of(server, LM_X)
            assert isinstance(server.closest_peers("p0", k=BIG_K), DegradedResult)
            assert isinstance(server.closest_peers("p0", k=BIG_K), DegradedResult)
            after = [
                (entry.peer_id, entry.distance)
                for entry in server._neighbor_cache.get("p0") or ()
            ]
            assert after == before  # degraded answers never wrote back
            assert server.stats.degraded_queries == 2
        finally:
            server.close()

    def test_recovered_shard_returns_full_fidelity_answers(self):
        reference = ManagementServer(
            neighbor_set_size=3, landmark_distances={(LM_X, LM_Y): 4.0}
        )
        for landmark in (LM_X, LM_Y):
            reference.register_landmark(landmark, landmark)
        server = make_plane()
        try:
            seed(server)
            reference.register_peers(
                [
                    simple_path(f"p{i}", LM_X if i % 2 == 0 else LM_Y, access=f"a{i % 3}")
                    for i in range(6)
                ]
            )
            victim = kill_shard_of(server, LM_X)
            assert isinstance(server.closest_peers("p0", k=BIG_K), DegradedResult)
            victim.restart()
            healed = server.closest_peers("p0", k=BIG_K)
            assert not isinstance(healed, DegradedResult)
            assert healed == reference.closest_peers("p0", k=BIG_K)
        finally:
            server.close()

    def test_degraded_reads_off_raises_typed(self):
        server = make_plane(degraded_reads=False)
        try:
            seed(server)
            victim = kill_shard_of(server, LM_X)
            with pytest.raises(ShardUnavailableError) as error:
                server.closest_peers("p0", k=BIG_K)
            assert victim.name in str(error.value)
            assert server.stats.degraded_queries == 0
        finally:
            server.close()


class TestMutationsNeverDegrade:
    def test_mutations_fail_typed_and_atomic_while_reads_degrade(self):
        server = make_plane()
        try:
            seed(server)
            kill_shard_of(server, LM_X)
            # Reads degrade...
            assert isinstance(server.closest_peers("p0", k=BIG_K), DegradedResult)
            # ...mutations on the dead shard do not: typed, atomic.
            with pytest.raises(ShardUnavailableError):
                server.unregister_peer("p0")
            assert server.has_peer("p0")
            with pytest.raises(ShardUnavailableError):
                server.register_peer(simple_path("p9", LM_X, access="a9"))
            assert not server.has_peer("p9")
            # The healthy shard keeps taking mutations throughout.
            server.register_peer(simple_path("p8", LM_Y, access="a9"))
            assert server.has_peer("p8")
        finally:
            server.close()


class TestHealth:
    def test_health_reports_the_dead_shard(self):
        server = make_plane()
        try:
            seed(server)
            assert server.health().healthy
            victim = kill_shard_of(server, LM_X)
            health = server.health()
            assert isinstance(health, PlaneHealth)
            assert not health.healthy
            down = [shard for shard in health.shards if not shard.alive]
            assert [shard.name for shard in down] == [victim.name]
            assert all(isinstance(shard, ShardHealth) for shard in health.shards)
        finally:
            server.close()

    def test_health_counts_degraded_queries(self):
        server = make_plane()
        try:
            seed(server)
            kill_shard_of(server, LM_X)
            server.closest_peers("p0", k=BIG_K)
            server.closest_peers("p0", k=BIG_K)
            assert server.health().degraded_queries == 2
        finally:
            server.close()

    def test_inline_plane_health_is_trivially_alive(self):
        server = ShardedManagementServer(2, neighbor_set_size=3)
        server.register_landmark(LM_X, LM_X)
        health = server.health()
        assert health.healthy
        assert len(health.shards) == 2

    def test_single_server_base_health_is_empty_but_counts(self):
        server = ManagementServer(neighbor_set_size=3)
        health = server.health()
        assert health.healthy
        assert health.shards == ()
        assert health.degraded_queries == 0


class TestShardDiesMidFill:
    """Satellite (c): a shard dying mid-``fill_candidates`` during a
    cross-shard query is never silently partial — the answer either fails
    typed (degraded reads off) or comes back tagged as a DegradedResult.

    The victim here is the *foreign* shard: the peer's home shard stays
    healthy, so the computation gets as far as merging the foreign shard's
    candidate stream before the death surfaces — the genuinely mid-fill
    case, not a failure on first touch.
    """

    def test_typed_failure_with_degradation_off(self):
        server = make_plane(degraded_reads=False, maintain_cache=False)
        try:
            seed(server, count=8)
            victim = kill_shard_of(server, LM_Y)  # foreign to p0 (home LM_X)
            with pytest.raises(ShardUnavailableError) as error:
                server.closest_peers("p0", k=BIG_K)
            assert victim.name in str(error.value)
        finally:
            server.close()

    def test_degraded_result_with_degradation_on(self):
        server = make_plane(maintain_cache=False)
        try:
            seed(server, count=8)
            victim = kill_shard_of(server, LM_Y)
            answer = server.closest_peers("p0", k=BIG_K)
            assert isinstance(answer, DegradedResult)
            returned = [peer for peer, _ in answer]
            assert returned
            assert len(returned) == len(set(returned))
            for peer in returned:  # never a peer from the dead stream
                assert server.shards[server.peer_shard(peer)] is not victim
                assert server.peer_landmark(peer) == LM_X
        finally:
            server.close()
