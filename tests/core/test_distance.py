"""Tests for the distance-accuracy tooling (dtree vs true distance)."""

from __future__ import annotations

import pytest

from repro.core.distance import (
    AccuracyReport,
    PairAccuracy,
    evaluate_estimator,
    sample_peer_pairs,
    true_hop_distances,
)
from repro.exceptions import MetricError
from repro.routing.shortest_path import AllPairsHopDistances
from repro.topology.graph import Graph


class TestPairAccuracy:
    def test_error_and_stretch(self):
        record = PairAccuracy("a", "b", true_distance=4.0, estimated_distance=6.0)
        assert record.absolute_error == 2.0
        assert record.stretch == pytest.approx(1.5)

    def test_exact_pair(self):
        record = PairAccuracy("a", "b", true_distance=4.0, estimated_distance=4.0)
        assert record.absolute_error == 0.0
        assert record.stretch == 1.0

    def test_zero_true_distance(self):
        same = PairAccuracy("a", "b", true_distance=0.0, estimated_distance=0.0)
        assert same.stretch == 1.0
        off = PairAccuracy("a", "b", true_distance=0.0, estimated_distance=1.0)
        assert off.stretch == float("inf")


class TestAccuracyReport:
    def test_from_records(self):
        records = [
            PairAccuracy("a", "b", 4.0, 4.0),
            PairAccuracy("a", "c", 4.0, 6.0),
            PairAccuracy("b", "c", 2.0, 2.0),
        ]
        report = AccuracyReport.from_records(records)
        assert report.pairs == 3
        assert report.exact_fraction == pytest.approx(2 / 3)
        assert report.mean_absolute_error == pytest.approx(2 / 3)
        assert report.max_absolute_error == 2.0
        assert report.mean_stretch >= 1.0

    def test_empty_records_rejected(self):
        with pytest.raises(MetricError):
            AccuracyReport.from_records([])


class _FixedEstimator:
    """Estimator returning a constant offset over the truth (for testing)."""

    def __init__(self, truths, offset=0.0):
        self.truths = truths
        self.offset = offset

    def estimate_distance(self, peer_a, peer_b):
        return self.truths[(peer_a, peer_b)] + self.offset


class TestEvaluateEstimator:
    def test_perfect_estimator(self):
        truths = {("a", "b"): 3.0, ("a", "c"): 5.0}
        report = evaluate_estimator(_FixedEstimator(truths), truths)
        assert report.exact_fraction == 1.0
        assert report.mean_stretch == 1.0

    def test_biased_estimator(self):
        truths = {("a", "b"): 4.0, ("a", "c"): 8.0}
        report = evaluate_estimator(_FixedEstimator(truths, offset=2.0), truths)
        assert report.exact_fraction == 0.0
        assert report.mean_absolute_error == 2.0


class TestSamplePairs:
    def test_samples_unique_unordered_pairs(self):
        peers = [f"p{i}" for i in range(10)]
        pairs = sample_peer_pairs(peers, 20, seed=1)
        assert len(pairs) == 20
        assert len(set(pairs)) == 20
        for peer_a, peer_b in pairs:
            assert peer_a != peer_b

    def test_caps_at_max_possible_pairs(self):
        peers = ["a", "b", "c"]
        pairs = sample_peer_pairs(peers, 100, seed=2)
        assert len(pairs) == 3

    def test_requires_two_peers(self):
        with pytest.raises(MetricError):
            sample_peer_pairs(["only"], 5)

    def test_deterministic_with_seed(self):
        peers = [f"p{i}" for i in range(8)]
        assert sample_peer_pairs(peers, 10, seed=3) == sample_peer_pairs(peers, 10, seed=3)

    def test_duplicate_ids_never_yield_self_pairs(self):
        peers = ["x"] * 50 + ["y", "z"]
        pairs = sample_peer_pairs(peers, 10, seed=4)
        assert pairs  # terminates despite the duplicate streak
        for peer_a, peer_b in pairs:
            assert peer_a != peer_b


class TestTrueHopDistances:
    def test_counts_host_hops(self, line_graph):
        attachment = {"pa": 0, "pb": 3, "pc": 0}
        truths = true_hop_distances(line_graph, attachment, [("pa", "pb"), ("pa", "pc")])
        assert truths[("pa", "pb")] == 3 + 2
        assert truths[("pa", "pc")] == 2  # same router, host hops only

    def test_custom_host_hops(self, line_graph):
        attachment = {"pa": 0, "pb": 1}
        truths = true_hop_distances(line_graph, attachment, [("pa", "pb")], host_hops=0)
        assert truths[("pa", "pb")] == 1.0

    def test_reuses_supplied_oracle(self, line_graph):
        oracle = AllPairsHopDistances(line_graph)
        attachment = {"pa": 0, "pb": 5}
        true_hop_distances(line_graph, attachment, [("pa", "pb")], oracle=oracle)
        assert oracle.cached_sources == 1
