"""Property tests for :class:`ConsistentHashRing` placement stability.

The sharded management plane promises that landmark placement is a pure
function of the landmark id — stable across processes, machines and Python
hash randomisation — because the process backend relies on every
coordinator (and every restarted worker's journal replay) agreeing on which
shard owns which landmark.  These tests pin that promise down:

* a **golden snapshot** of ``node_for`` placements guards the SHA-1-derived
  ring against accidental re-derivations (changing the point format, the
  digest slice or the replica count silently remaps every deployment);
* a subprocess run under a different ``PYTHONHASHSEED`` proves placement
  does not leak Python's per-process string hashing;
* a hypothesis sweep bounds the per-node key spread at the default
  ``replicas=64``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConsistentHashRing

# Golden node_for placements at replicas=64.  These values are part of the
# operational contract (a remap moves peers between shards on every running
# deployment), so a failure here means the ring algorithm changed — bump
# deliberately, never casually.
GOLDEN_KEYS = [f"lm{i}" for i in range(12)] + [
    "landmark-0",
    "landmark-41",
    "eu-west",
    "ap-south",
    7,
    ("a", 1),
]

GOLDEN_PLACEMENTS = {
    2: [0, 0, 1, 0, 0, 0, 0, 0, 1, 0, 1, 0, 0, 0, 0, 1, 1, 0],
    3: [0, 0, 1, 2, 2, 0, 2, 2, 1, 0, 1, 2, 0, 0, 0, 2, 2, 2],
    5: [0, 0, 1, 3, 3, 4, 2, 3, 1, 0, 1, 2, 0, 3, 0, 2, 3, 2],
    8: [0, 0, 1, 7, 3, 5, 6, 3, 7, 5, 1, 6, 0, 5, 5, 6, 3, 6],
}


class TestGoldenSnapshot:
    def test_node_for_matches_golden_placements(self):
        for node_count, expected in GOLDEN_PLACEMENTS.items():
            ring = ConsistentHashRing(node_count)
            assert [ring.node_for(key) for key in GOLDEN_KEYS] == expected, node_count

    def test_placement_is_stable_across_python_processes(self):
        """A fresh interpreter with a different hash seed places identically."""
        script = (
            "from repro.core import ConsistentHashRing\n"
            "ring = ConsistentHashRing(8)\n"
            "print([ring.node_for(f'lm{i}') for i in range(12)])\n"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (os.path.abspath("src"), env.get("PYTHONPATH")) if part
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert output == str(GOLDEN_PLACEMENTS[8][:12])


class TestSpreadBounds:
    @settings(deadline=None, max_examples=40)
    @given(
        node_count=st.integers(2, 8),
        prefix=st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=0,
            max_size=8,
        ),
    )
    def test_per_node_spread_is_bounded_at_default_replicas(self, node_count, prefix):
        """With replicas=64, no node gets starved or swamped.

        Consistent hashing is only near-uniform, so the bound is loose —
        every node owns between 1/4 and 4x its fair share of a 1024-key
        population — but tight enough to catch a degenerate ring (one node
        owning everything, or a node owning nothing at all).
        """
        ring = ConsistentHashRing(node_count, replicas=64)
        keys = [f"{prefix}:key-{index}" for index in range(1024)]
        counts = Counter(ring.node_for(key) for key in keys)
        fair_share = len(keys) / node_count
        assert set(counts) == set(range(node_count))
        assert min(counts.values()) >= fair_share / 4
        assert max(counts.values()) <= fair_share * 4

    @settings(deadline=None, max_examples=20)
    @given(node_count=st.integers(1, 7))
    def test_growth_relocates_a_bounded_fraction(self, node_count):
        """n -> n+1 growth moves well under half the keys (vs ~n/(n+1) for modulo)."""
        before = ConsistentHashRing(node_count)
        after = ConsistentHashRing(node_count + 1)
        keys = [f"grow-key-{index}" for index in range(600)]
        moved = sum(1 for key in keys if before.node_for(key) != after.node_for(key))
        assert moved <= len(keys) // 2
