"""Hot-path instrumentation: no ``repr`` remains on register/query/propagate.

The interned arrival engine's contract (PR 5): ``repr(peer_id)`` runs **once
per peer, at first registration** — interned by the plane's
:class:`~repro.core.interning.PeerKeyInterner` — and never again: not per
candidate in a query sort, not per bisect probe in ``propagate_newcomer``,
not per insert in the min-hop orderings, not at all on churn re-arrivals or
cached queries.

These tests pin that by swapping ``builtins.repr`` for a counting wrapper
around the measured window.  Explicit ``repr(...)`` calls in library code
resolve through ``builtins`` at call time, so the counter sees exactly the
calls the interner was built to eliminate (f-string ``!r`` and C-level
formatting bypass it — they are not on any hot path).
"""

from __future__ import annotations

import builtins

import pytest

from repro.core import ManagementServer, ShardedManagementServer
from repro.core.path import RouterPath


def make_path(index: int, landmark: str = "lmk", access: int = 0) -> RouterPath:
    routers = [f"{landmark}-acc-{access}", f"{landmark}-core", landmark]
    return RouterPath.from_routers(f"peer{index}", landmark, routers)


def count_reprs(fn) -> int:
    """Run ``fn`` with ``builtins.repr`` replaced by a counting wrapper."""
    calls = 0
    real_repr = builtins.repr

    def counting_repr(obj) -> str:
        nonlocal calls
        calls += 1
        return real_repr(obj)

    builtins.repr = counting_repr
    try:
        fn()
    finally:
        builtins.repr = real_repr
    return calls


@pytest.fixture()
def server() -> ManagementServer:
    server = ManagementServer(neighbor_set_size=4)
    server.register_landmark("lmk", "lmk")
    server.register_peers([make_path(i, access=i % 7) for i in range(40)])
    return server


class TestRegisterPath:
    def test_fresh_batch_interns_once_per_peer(self, server):
        newcomers = [make_path(100 + i, access=i % 5) for i in range(20)]
        calls = count_reprs(lambda: server.register_peers(newcomers))
        assert calls <= len(newcomers)

    def test_single_arrival_interns_at_most_once(self, server):
        path = make_path(200, access=3)
        assert count_reprs(lambda: server.register_peer(path)) <= 1

    def test_churn_cycle_interns_at_most_once(self, server):
        """A leave/re-join cycle — tree removal, reverse-index repair,
        re-insert, neighbour recompute, cache propagation — pays at most ONE
        repr call: the departure evicts the peer's interned key (so the
        table stays bounded by the live population) and the re-arrival
        re-interns it.  Never per candidate, per probe, or per list."""
        path = server.peer_path("peer3")

        def cycle():
            server.unregister_peer("peer3")
            server.register_peers([path])

        assert count_reprs(cycle) <= 1

    def test_interner_stays_bounded_under_open_world_churn(self, server):
        """Departing peers are evicted from the plane's intern table, so a
        long-lived server's key table tracks the live population, not the
        cumulative arrival count."""
        interner = server._interner
        before = len(interner)
        for wave in range(5):
            fresh = [make_path(1000 + wave * 20 + i, access=i % 5) for i in range(20)]
            server.register_peers(fresh)
            for path in fresh:
                server.unregister_peer(path.peer_id)
        assert len(interner) == before


class TestQueryPath:
    def test_cached_query_is_repr_free(self, server):
        assert count_reprs(lambda: [server.closest_peers(f"peer{i}") for i in range(40)]) == 0

    def test_tree_walk_query_is_repr_free(self):
        """The count-guided frontier walk sorts candidates on interned keys:
        even full cache-miss queries never call repr."""
        server = ManagementServer(neighbor_set_size=4, maintain_cache=False)
        server.register_landmark("lmk", "lmk")
        server.register_peers([make_path(i, access=i % 7) for i in range(40)])
        assert count_reprs(lambda: [server.closest_peers(f"peer{i}") for i in range(40)]) == 0

    def test_cross_landmark_fill_is_repr_free(self):
        """The lazily merged min-hop orderings are built from interned keys:
        a query that needs the cross-landmark fill stays repr-free."""
        server = ManagementServer(
            neighbor_set_size=4, landmark_distances={("lmA", "lmB"): 3.0}
        )
        server.register_landmark("lmA", "lmA")
        server.register_landmark("lmB", "lmB")
        server.register_peers(
            [make_path(0, landmark="lmA")]
            + [make_path(10 + i, landmark="lmB", access=i) for i in range(6)]
        )
        assert count_reprs(lambda: server.closest_peers("peer0", k=4)) == 0


class TestShardedPlane:
    def test_sharded_batch_interns_at_most_twice_per_peer(self):
        """Coordinator and home shard each own one interner: a fresh peer is
        interned at most twice, independent of k, list sizes, or shard count."""
        server = ShardedManagementServer(shard_count=3, neighbor_set_size=4)
        for landmark in ("lmA", "lmB"):
            server.register_landmark(landmark, landmark)
        first = [make_path(i, landmark="lmA", access=i % 5) for i in range(10)]
        second = [make_path(50 + i, landmark="lmB", access=i % 5) for i in range(10)]
        server.register_peers(first)
        calls = count_reprs(lambda: server.register_peers(second))
        assert calls <= 2 * len(second)
        assert count_reprs(lambda: [server.closest_peers(p.peer_id) for p in second]) == 0
