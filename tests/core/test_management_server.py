"""Tests for the management server (registration, queries, caching)."""

from __future__ import annotations

import pytest

from repro.core.management_server import ManagementServer
from repro.core.path import RouterPath
from repro.exceptions import LandmarkError, RegistrationError, UnknownPeerError


def path(peer, routers, landmark="lmA"):
    return RouterPath.from_routers(peer, landmark, routers)


@pytest.fixture()
def server() -> ManagementServer:
    server = ManagementServer(neighbor_set_size=3)
    server.register_landmark("lmA", "lmA")
    server.register_landmark("lmB", "lmB")
    server.set_landmark_distance("lmA", "lmB", 6)
    return server


@pytest.fixture()
def populated(server) -> ManagementServer:
    server.register_peer(path("p1", ["a1", "a2", "core", "lmA"]))
    server.register_peer(path("p2", ["a3", "a2", "core", "lmA"]))
    server.register_peer(path("p3", ["b1", "core", "lmA"]))
    server.register_peer(path("p4", ["b1", "core", "lmA"]))
    server.register_peer(path("q1", ["x1", "x2", "lmB"], landmark="lmB"))
    return server


class TestLandmarks:
    def test_registration_and_lookup(self, server):
        assert set(server.landmarks()) == {"lmA", "lmB"}
        assert server.landmark_router("lmA") == "lmA"

    def test_duplicate_landmark_rejected(self, server):
        with pytest.raises(LandmarkError):
            server.register_landmark("lmA", "elsewhere")

    def test_unknown_landmark_lookup_raises(self, server):
        with pytest.raises(LandmarkError):
            server.landmark_router("lmZ")
        with pytest.raises(LandmarkError):
            server.tree("lmZ")

    def test_landmark_distance_symmetric(self, server):
        assert server.landmark_distance("lmA", "lmB") == 6
        assert server.landmark_distance("lmB", "lmA") == 6
        assert server.landmark_distance("lmA", "lmA") == 0.0
        assert server.landmark_distance("lmA", "lmZ") is None

    def test_negative_landmark_distance_rejected(self, server):
        with pytest.raises(LandmarkError):
            server.set_landmark_distance("lmA", "lmB", -1)


class TestRegistration:
    def test_register_returns_neighbors(self, server):
        first = server.register_peer(path("p1", ["a1", "core", "lmA"]))
        assert first == []  # nobody else yet
        second = server.register_peer(path("p2", ["a1", "core", "lmA"]))
        assert second == [("p1", 2.0)]
        assert server.peer_count == 2

    def test_register_to_unknown_landmark_rejected(self, server):
        with pytest.raises(RegistrationError):
            server.register_peer(path("p1", ["r", "lmZ"], landmark="lmZ"))

    def test_reregistration_replaces_path(self, populated):
        populated.register_peer(path("p1", ["b1", "core", "lmA"]))
        assert populated.peer_count == 5
        assert populated.peer_path("p1").access_router == "b1"
        # p1 now sits next to p3/p4.
        assert populated.estimate_distance("p1", "p3") == 2.0

    def test_peer_lookups(self, populated):
        assert populated.has_peer("p1")
        assert populated.peer_landmark("p1") == "lmA"
        assert populated.peer_landmark("q1") == "lmB"
        assert set(populated.peers()) == {"p1", "p2", "p3", "p4", "q1"}

    def test_unknown_peer_lookups_raise(self, populated):
        with pytest.raises(UnknownPeerError):
            populated.peer_path("ghost")
        with pytest.raises(UnknownPeerError):
            populated.peer_landmark("ghost")
        with pytest.raises(UnknownPeerError):
            populated.closest_peers("ghost")

    def test_unregister(self, populated):
        populated.unregister_peer("p4")
        assert not populated.has_peer("p4")
        assert populated.peer_count == 4
        neighbors = populated.closest_peers("p3")
        assert all(peer != "p4" for peer, _ in neighbors)

    def test_unregister_unknown_raises(self, populated):
        with pytest.raises(UnknownPeerError):
            populated.unregister_peer("ghost")

    def test_stats_counters(self, populated):
        stats = populated.stats
        assert stats.registrations == 5
        populated.closest_peers("p1")
        assert stats.queries >= 1
        populated.unregister_peer("p1")
        assert stats.removals == 1
        stats.reset()
        assert stats.registrations == 0


class TestQueries:
    def test_closest_peers_same_landmark(self, populated):
        neighbors = dict(populated.closest_peers("p3", k=2))
        assert neighbors["p4"] == 2.0

    def test_estimate_distance_same_landmark(self, populated):
        assert populated.estimate_distance("p1", "p2") == 4.0
        assert populated.estimate_distance("p3", "p4") == 2.0
        assert populated.estimate_distance("p1", "p1") == 0.0

    def test_estimate_distance_cross_landmark(self, populated):
        # p1 has 4 hops to lmA, q1 has 3 hops to lmB, landmarks are 6 apart.
        assert populated.estimate_distance("p1", "q1") == 4 + 6 + 3

    def test_cross_landmark_without_distance_raises(self):
        server = ManagementServer(neighbor_set_size=2)
        server.register_landmark("lmA", "lmA")
        server.register_landmark("lmB", "lmB")
        server.register_peer(path("p1", ["a", "lmA"], landmark="lmA"))
        server.register_peer(path("p2", ["b", "lmB"], landmark="lmB"))
        with pytest.raises(LandmarkError):
            server.estimate_distance("p1", "p2")

    def test_cross_landmark_fill_when_tree_is_sparse(self, populated):
        # q1 is alone under lmB, so its neighbours must come from lmA.
        neighbors = populated.closest_peers("q1", k=3)
        assert len(neighbors) == 3
        assert all(peer.startswith("p") for peer, _ in neighbors)
        # Estimates use the landmark detour.
        for peer, distance in neighbors:
            assert distance == populated.estimate_distance("q1", peer)

    def test_query_with_larger_k_falls_back_to_tree(self, populated):
        neighbors = populated.closest_peers("p1", k=4)
        assert len(neighbors) == 4

    def test_neighbor_lists_sorted_by_distance(self, populated):
        for peer in populated.peers():
            distances = [d for _, d in populated.closest_peers(peer, k=4)]
            assert distances == sorted(distances)


class TestShortListCompleteness:
    """The cache-hit predicate fix (PR 5): a list that is legitimately
    short — the plane simply cannot provide ``k`` reachable candidates —
    must hit the cache in the steady state instead of paying a tree walk
    per query, and must be recomputed exactly once after any membership
    change that could add a candidate."""

    @pytest.fixture()
    def island(self) -> ManagementServer:
        """k=5, two landmarks, NO inter-landmark distances: lmB's peers can
        never fill from lmA, so their lists are legitimately short."""
        server = ManagementServer(neighbor_set_size=5)
        server.register_landmark("lmA", "lmA")
        server.register_landmark("lmB", "lmB")
        for index in range(8):
            server.register_peer(path(f"a{index}", [f"r{index}", "core", "lmA"]))
        server.register_peer(path("b1", ["x1", "lmB"], landmark="lmB"))
        server.register_peer(path("b2", ["x2", "lmB"], landmark="lmB"))
        server.register_peer(path("b3", ["x3", "lmB"], landmark="lmB"))
        return server

    def test_short_list_hits_cache_in_steady_state(self, island):
        first = island.closest_peers("b1")
        assert len(first) == 2  # only b2/b3 are reachable: legitimately short
        island.stats.reset()
        for _ in range(5):
            assert island.closest_peers("b1") == first
        assert island.stats.cache_hits == 5
        assert island.stats.tree_queries == 0

    def test_seed_predicate_regression(self, island):
        """The pre-fix predicate ``len(entries) >= min(k, peer_count - 1)``
        made every b-peer query walk the tree: 2 cached entries < min(5, 10).
        Pin the fixed behaviour counter-for-counter."""
        island.closest_peers("b2")
        island.stats.reset()
        island.closest_peers("b2")
        island.closest_peers("b2")
        assert island.stats.tree_queries == 0

    def test_arrival_invalidates_short_list_once(self, island):
        first = island.closest_peers("b1")
        island.register_peer(path("b4", ["x4", "lmB"], landmark="lmB"))
        island.stats.reset()
        updated = island.closest_peers("b1")
        assert {peer for peer, _ in updated} == {"b2", "b3", "b4"}
        assert updated != first
        # Exactly one recompute, then the (still short) list is warm again.
        assert island.stats.tree_queries == 1
        island.stats.reset()
        assert island.closest_peers("b1") == updated
        assert island.stats.tree_queries == 0
        assert island.stats.cache_hits == 1

    def test_new_landmark_distance_invalidates_short_list(self, island):
        short = island.closest_peers("b1")
        assert len(short) == 2
        island.set_landmark_distance("lmA", "lmB", 4.0)
        filled = island.closest_peers("b1")
        assert len(filled) == 5  # the fill can now reach lmA's peers
        assert [pair for pair in filled[:2]] == short

    def test_departure_keeps_short_list_warm_and_correct(self, island):
        island.closest_peers("b1")
        island.unregister_peer("b2")
        island.stats.reset()
        assert [peer for peer, _ in island.closest_peers("b1")] == ["b3"]
        # The reverse-index repair already fixed the list: no recompute.
        assert island.stats.tree_queries == 0

    def test_short_hit_matches_recompute_exactly(self, island):
        """Served-from-cache short lists must be byte-identical to what a
        cacheless twin computes — completeness is a work optimisation only."""
        twin = ManagementServer(neighbor_set_size=5, maintain_cache=False)
        twin.register_landmark("lmA", "lmA")
        twin.register_landmark("lmB", "lmB")
        for peer in island.peers():
            twin.register_peer(island.peer_path(peer))
        for peer in island.peers():
            island.closest_peers(peer)  # warm + mark
            assert island.closest_peers(peer) == twin.closest_peers(peer)


class TestCacheMaintenance:
    def test_cache_hit_counted(self, populated):
        populated.stats.reset()
        populated.closest_peers("p1")
        assert populated.stats.cache_hits == 1
        assert populated.stats.tree_queries == 0

    def test_early_joiner_list_updated_by_later_arrivals(self, server):
        server.register_peer(path("early", ["a1", "core", "lmA"]))
        server.register_peer(path("later1", ["a1", "core", "lmA"]))
        server.register_peer(path("later2", ["a9", "core", "lmA"]))
        neighbors = dict(server.closest_peers("early"))
        assert neighbors["later1"] == 2.0
        assert "later2" in neighbors

    def test_cache_preserves_best_k(self, server):
        server = ManagementServer(neighbor_set_size=2)
        server.register_landmark("lmA", "lmA")
        server.register_peer(path("origin", ["a1", "core", "lmA"]))
        # Three later arrivals at increasing distance from origin.
        server.register_peer(path("near", ["a1", "core", "lmA"]))       # dtree 2
        server.register_peer(path("medium", ["a9", "a1", "core", "lmA"]))  # dtree 3 (below a1)
        server.register_peer(path("far", ["z1", "z2", "core", "lmA"]))  # dtree 6
        neighbors = server.closest_peers("origin", k=2)
        assert [peer for peer, _ in neighbors] == ["near", "medium"]

    def test_disabled_cache_always_walks_tree(self):
        server = ManagementServer(neighbor_set_size=2, maintain_cache=False)
        server.register_landmark("lmA", "lmA")
        server.register_peer(path("p1", ["a", "lmA"]))
        server.register_peer(path("p2", ["a", "lmA"]))
        server.stats.reset()
        server.closest_peers("p1")
        assert server.stats.cache_hits == 0
        assert server.stats.tree_queries == 1

    def test_cached_answers_close_to_exact_tree_answers(self):
        """The O(1) cache is allowed to be slightly approximate, never wildly off.

        The cache is maintained by pushing each newcomer into the lists of the
        peers the newcomer itself considers closest; a peer that narrowly
        misses a newcomer's top-k may keep a marginally worse entry.  The
        answers must still be within one hop per neighbour of the exact tree
        walk.
        """
        cached = ManagementServer(neighbor_set_size=3, maintain_cache=True)
        uncached = ManagementServer(neighbor_set_size=3, maintain_cache=False)
        for srv in (cached, uncached):
            srv.register_landmark("lmA", "lmA")
        routes = [
            ("p1", ["a1", "a2", "core", "lmA"]),
            ("p2", ["a3", "a2", "core", "lmA"]),
            ("p3", ["b1", "core", "lmA"]),
            ("p4", ["b1", "core", "lmA"]),
            ("p5", ["core", "lmA"]),
        ]
        for peer, routers in routes:
            cached.register_peer(path(peer, routers))
            uncached.register_peer(path(peer, routers))
        for peer, _ in routes:
            cached_distances = sorted(d for _, d in cached.closest_peers(peer))
            exact_distances = sorted(d for _, d in uncached.closest_peers(peer))
            assert len(cached_distances) == len(exact_distances)
            for cached_value, exact_value in zip(cached_distances, exact_distances):
                assert exact_value <= cached_value <= exact_value + 1

    def test_departed_peer_removed_from_cached_lists(self, populated):
        assert any(peer == "p4" for peer, _ in populated.closest_peers("p3"))
        populated.unregister_peer("p4")
        assert all(peer != "p4" for peer, _ in populated.closest_peers("p3"))

    def test_repr_mentions_peer_count(self, populated):
        assert "peers=5" in repr(populated)
