"""Tests for the client-side join logic (NewcomerClient)."""

from __future__ import annotations

import pytest

from repro.core.management_server import ManagementServer
from repro.core.newcomer import (
    SELECT_CLOSEST_RTT,
    SELECT_FEWEST_HOPS,
    SELECT_FIRST,
    NewcomerClient,
    join_population,
)
from repro.core.protocol import LandmarkDescriptor
from repro.exceptions import LandmarkError
from repro.routing.route_table import RouteTable
from repro.routing.traceroute import TracerouteSimulator
from repro.topology.graph import Graph


@pytest.fixture()
def topology() -> Graph:
    """Two access branches joined by a core link; landmarks at both ends.

    Structure (all latencies 1 ms except the long core link)::

        a1 - a2 - coreA ===== coreB - b2 - b1
                   |                   |
                  lmA                 lmB
    """
    graph = Graph()
    graph.add_edge("a1", "a2", latency=1.0)
    graph.add_edge("a2", "coreA", latency=1.0)
    graph.add_edge("coreA", "coreB", latency=10.0)
    graph.add_edge("coreB", "b2", latency=1.0)
    graph.add_edge("b2", "b1", latency=1.0)
    graph.add_edge("coreA", "lmA", latency=1.0)
    graph.add_edge("coreB", "lmB", latency=1.0)
    return graph


@pytest.fixture()
def traceroute(topology) -> TracerouteSimulator:
    return TracerouteSimulator(graph=topology, route_table=RouteTable(graph=topology))


@pytest.fixture()
def server() -> ManagementServer:
    server = ManagementServer(neighbor_set_size=3)
    server.register_landmark("lmA", "lmA")
    server.register_landmark("lmB", "lmB")
    server.set_landmark_distance("lmA", "lmB", 2)
    return server


class TestLandmarkSelection:
    def test_closest_rtt_picks_nearby_landmark(self, traceroute):
        client = NewcomerClient("p1", "a1", traceroute, landmark_selection=SELECT_CLOSEST_RTT)
        descriptors = [LandmarkDescriptor("lmA", "lmA"), LandmarkDescriptor("lmB", "lmB")]
        chosen, measurements = client.select_landmark(descriptors)
        assert chosen.landmark_id == "lmA"
        assert measurements["lmA"] < measurements["lmB"]

    def test_fewest_hops_policy(self, traceroute):
        client = NewcomerClient("p1", "b1", traceroute, landmark_selection=SELECT_FEWEST_HOPS)
        descriptors = [LandmarkDescriptor("lmA", "lmA"), LandmarkDescriptor("lmB", "lmB")]
        chosen, _ = client.select_landmark(descriptors)
        assert chosen.landmark_id == "lmB"

    def test_first_policy_skips_probing(self, traceroute):
        client = NewcomerClient("p1", "b1", traceroute, landmark_selection=SELECT_FIRST)
        descriptors = [LandmarkDescriptor("lmA", "lmA"), LandmarkDescriptor("lmB", "lmB")]
        chosen, measurements = client.select_landmark(descriptors)
        assert chosen.landmark_id == "lmA"
        assert measurements == {}

    def test_single_landmark_shortcut(self, traceroute):
        client = NewcomerClient("p1", "a1", traceroute)
        chosen, measurements = client.select_landmark([LandmarkDescriptor("lmA", "lmA")])
        assert chosen.landmark_id == "lmA"
        assert measurements == {}

    def test_empty_landmark_list_raises(self, traceroute):
        client = NewcomerClient("p1", "a1", traceroute)
        with pytest.raises(LandmarkError):
            client.select_landmark([])

    def test_invalid_policy_rejected(self, traceroute):
        with pytest.raises(Exception):
            NewcomerClient("p1", "a1", traceroute, landmark_selection="nearest-by-magic")


class TestProbing:
    def test_probe_includes_access_router_and_landmark(self, traceroute):
        client = NewcomerClient("p1", "a1", traceroute)
        path = client.probe_landmark(LandmarkDescriptor("lmA", "lmA"))
        assert path.routers[0] == "a1"
        assert path.routers[-1] == "lmA"
        assert path.routers == ("a1", "a2", "coreA", "lmA")
        assert path.rtt_ms is not None and path.rtt_ms > 0

    def test_probe_from_router_adjacent_to_landmark(self, traceroute):
        client = NewcomerClient("p1", "coreA", traceroute)
        path = client.probe_landmark(LandmarkDescriptor("lmA", "lmA"))
        assert path.routers == ("coreA", "lmA")


class TestJoin:
    def test_join_registers_with_chosen_landmark(self, server, traceroute):
        client = NewcomerClient("p1", "a1", traceroute)
        result = client.join(server)
        assert result.landmark_id == "lmA"
        assert server.has_peer("p1")
        assert server.peer_landmark("p1") == "lmA"
        assert result.neighbors == []  # first peer has no neighbours yet

    def test_join_returns_nearby_peers(self, server, traceroute):
        NewcomerClient("p1", "a1", traceroute).join(server)
        NewcomerClient("p2", "a2", traceroute).join(server)
        result = NewcomerClient("p3", "a1", traceroute).join(server)
        ids = result.neighbor_ids()
        assert ids[0] == "p1"  # same access router -> closest
        assert "p2" in ids

    def test_join_transcript_times_are_consistent(self, server, traceroute):
        client = NewcomerClient("p1", "b1", traceroute, probe_cost_ms=10.0)
        result = client.join(server, start_time_ms=1000.0)
        transcript = result.transcript
        assert transcript.probe_started_at == 1000.0
        assert transcript.probe_finished_at > transcript.probe_started_at
        assert transcript.neighbors_received_at >= transcript.report_sent_at
        assert transcript.setup_delay > 0

    def test_peers_on_opposite_sides_choose_different_landmarks(self, server, traceroute):
        result_a = NewcomerClient("pa", "a1", traceroute).join(server)
        result_b = NewcomerClient("pb", "b1", traceroute).join(server)
        assert result_a.landmark_id == "lmA"
        assert result_b.landmark_id == "lmB"
        # Cross-landmark estimate still lets them see each other if needed.
        assert server.estimate_distance("pa", "pb") > 0

    def test_join_population_helper(self, server, traceroute):
        results = join_population(
            {"p1": "a1", "p2": "a2", "p3": "b1"}, server, traceroute
        )
        assert set(results) == {"p1", "p2", "p3"}
        assert server.peer_count == 3
