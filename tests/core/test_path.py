"""Tests for RouterPath and the pairwise tree-distance helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.path import RouterPath, shared_suffix_length, tree_distance
from repro.exceptions import RegistrationError
from repro.routing.path_inference import CleanedPath


def make_path(peer, routers, landmark="lmk", rtt=None):
    return RouterPath.from_routers(peer, landmark, routers, rtt_ms=rtt)


class TestConstruction:
    def test_basic_fields(self):
        path = make_path("p1", ["r1", "r2", "lmk"], rtt=12.5)
        assert path.access_router == "r1"
        assert path.landmark_router == "lmk"
        assert path.hop_count == 3
        assert path.rtt_ms == 12.5
        assert len(path) == 3
        assert list(path) == ["r1", "r2", "lmk"]

    def test_empty_path_rejected(self):
        with pytest.raises(RegistrationError):
            make_path("p1", [])

    def test_duplicate_routers_rejected(self):
        with pytest.raises(RegistrationError):
            make_path("p1", ["r1", "r2", "r1"])

    def test_from_cleaned(self):
        cleaned = CleanedPath(
            source="p1", destination="lmk", routers=["r1", "r2"], anonymous_hops=0, truncated=False
        )
        path = RouterPath.from_cleaned("p1", "lmA", cleaned, rtt_ms=3.0)
        assert path.routers == ("r1", "r2")
        assert path.landmark_id == "lmA"

    def test_immutability(self):
        path = make_path("p1", ["r1", "lmk"])
        with pytest.raises(Exception):
            path.routers = ("x",)  # type: ignore[misc]


class TestViews:
    def test_orderings(self):
        path = make_path("p1", ["r1", "r2", "r3"])
        assert path.towards_landmark() == ("r1", "r2", "r3")
        assert path.from_landmark() == ("r3", "r2", "r1")

    def test_contains_and_depth(self):
        path = make_path("p1", ["r1", "r2", "r3"])
        assert path.contains_router("r2")
        assert not path.contains_router("rX")
        assert path.depth_of("r3") == 0
        assert path.depth_of("r1") == 2

    def test_depth_of_unknown_router_raises(self):
        path = make_path("p1", ["r1", "r2"])
        with pytest.raises(RegistrationError):
            path.depth_of("ghost")


class TestSharedSuffix:
    def test_partial_overlap(self):
        path_a = make_path("p1", ["a1", "a2", "core", "lmk"])
        path_b = make_path("p2", ["b1", "core", "lmk"])
        assert shared_suffix_length(path_a, path_b) == 2

    def test_identical_routes(self):
        path_a = make_path("p1", ["r1", "r2", "lmk"])
        path_b = make_path("p2", ["r1", "r2", "lmk"])
        assert shared_suffix_length(path_a, path_b) == 3

    def test_disjoint_routes(self):
        path_a = make_path("p1", ["a", "b"])
        path_b = make_path("p2", ["c", "d"])
        assert shared_suffix_length(path_a, path_b) == 0


class TestTreeDistance:
    def test_same_peer_distance_zero(self):
        path = make_path("p1", ["r1", "lmk"])
        assert tree_distance(path, path) == 0

    def test_same_access_router(self):
        path_a = make_path("p1", ["r1", "r2", "lmk"])
        path_b = make_path("p2", ["r1", "r2", "lmk"])
        assert tree_distance(path_a, path_b) == 2

    def test_branch_at_core(self):
        path_a = make_path("p1", ["a1", "a2", "core", "lmk"])
        path_b = make_path("p2", ["b1", "core", "lmk"])
        # p1 -> a1 -> a2 -> core = 3 hops, core -> b1 -> p2 = 2 hops.
        assert tree_distance(path_a, path_b) == 5

    def test_disjoint_paths_return_none(self):
        path_a = make_path("p1", ["a", "b"], landmark="lm1")
        path_b = make_path("p2", ["c", "d"], landmark="lm2")
        assert tree_distance(path_a, path_b) is None

    def test_symmetry(self):
        path_a = make_path("p1", ["a1", "core", "lmk"])
        path_b = make_path("p2", ["b1", "b2", "core", "lmk"])
        assert tree_distance(path_a, path_b) == tree_distance(path_b, path_a)


router_names = st.lists(
    st.integers(min_value=0, max_value=30).map(lambda i: f"r{i}"),
    min_size=1,
    max_size=8,
    unique=True,
)


@settings(max_examples=50, deadline=None)
@given(suffix=router_names, branch_a=router_names, branch_b=router_names)
def test_property_tree_distance_formula(suffix, branch_a, branch_b):
    """dtree equals the hop counts to the branch router plus one host hop per side."""
    # Build two paths sharing exactly `suffix` at the landmark end, with
    # disjoint peer-side branches.
    branch_a = [f"a-{router}" for router in branch_a if router not in suffix]
    branch_b = [f"b-{router}" for router in branch_b if router not in suffix]
    path_a = RouterPath.from_routers("p1", "lmk", branch_a + suffix)
    path_b = RouterPath.from_routers("p2", "lmk", branch_b + suffix)
    expected = (len(branch_a) + 1) + (len(branch_b) + 1)
    assert tree_distance(path_a, path_b) == expected
    assert shared_suffix_length(path_a, path_b) == len(suffix)


@settings(max_examples=50, deadline=None)
@given(routers=router_names)
def test_property_tree_distance_of_identical_routes_is_two(routers):
    """Two distinct peers behind the same access router are always 2 hops apart."""
    path_a = RouterPath.from_routers("p1", "lmk", routers)
    path_b = RouterPath.from_routers("p2", "lmk", routers)
    assert tree_distance(path_a, path_b) == 2
