"""Tests for the landmark-rooted path tree (the core data structure)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.path import RouterPath, tree_distance
from repro.core.path_tree import PathTree
from repro.exceptions import RegistrationError, UnknownPeerError


def path(peer, routers, landmark="lmk"):
    return RouterPath.from_routers(peer, landmark, routers)


@pytest.fixture()
def populated_tree() -> PathTree:
    """Tree over a small two-branch topology.

    Routes (peer side first)::

        p1: a1 a2 core lmk
        p2: a3 a2 core lmk
        p3: b1 core lmk
        p4: b1 core lmk      (same access router as p3)
        p5: core lmk
    """
    tree = PathTree(landmark_id="lmk", landmark_router="lmk")
    tree.insert(path("p1", ["a1", "a2", "core", "lmk"]))
    tree.insert(path("p2", ["a3", "a2", "core", "lmk"]))
    tree.insert(path("p3", ["b1", "core", "lmk"]))
    tree.insert(path("p4", ["b1", "core", "lmk"]))
    tree.insert(path("p5", ["core", "lmk"]))
    return tree


class TestInsertion:
    def test_counts(self, populated_tree):
        assert populated_tree.peer_count == 5
        assert len(populated_tree) == 5
        # Routers: lmk, core, a2, a1, a3, b1.
        assert populated_tree.router_count == 6
        assert populated_tree.max_depth() == 3

    def test_root_is_landmark_router(self, populated_tree):
        assert populated_tree.root.router == "lmk"
        assert populated_tree.root.depth == 0

    def test_lazy_root_creation(self):
        tree = PathTree(landmark_id="lmk")
        assert tree.root is None
        tree.insert(path("p1", ["r1", "lmk"]))
        assert tree.root.router == "lmk"

    def test_wrong_landmark_rejected(self, populated_tree):
        with pytest.raises(RegistrationError):
            populated_tree.insert(path("p9", ["x", "other"], landmark="other-lmk"))

    def test_mismatched_root_rejected(self, populated_tree):
        with pytest.raises(RegistrationError):
            populated_tree.insert(path("p9", ["x", "not-lmk"]))

    def test_reinsert_replaces_previous_path(self, populated_tree):
        populated_tree.insert(path("p1", ["b1", "core", "lmk"]))
        assert populated_tree.peer_count == 5
        assert populated_tree.attachment_node("p1").router == "b1"

    def test_subtree_counts_propagate(self, populated_tree):
        assert populated_tree.root.subtree_peer_count == 5
        core = populated_tree.root.child("core")
        assert core.subtree_peer_count == 5
        a2 = core.child("a2")
        assert a2.subtree_peer_count == 2

    def test_attachment_and_path_lookup(self, populated_tree):
        assert populated_tree.has_peer("p3")
        assert "p3" in populated_tree
        assert populated_tree.attachment_node("p3").router == "b1"
        assert populated_tree.path_of("p3").routers == ("b1", "core", "lmk")

    def test_unknown_peer_lookups_raise(self, populated_tree):
        with pytest.raises(UnknownPeerError):
            populated_tree.attachment_node("ghost")
        with pytest.raises(UnknownPeerError):
            populated_tree.path_of("ghost")


class TestRemoval:
    def test_remove_updates_counts(self, populated_tree):
        populated_tree.remove("p1")
        assert populated_tree.peer_count == 4
        assert not populated_tree.has_peer("p1")
        assert populated_tree.root.subtree_peer_count == 4

    def test_remove_prunes_empty_branches(self, populated_tree):
        populated_tree.remove("p1")
        core = populated_tree.root.child("core")
        a2 = core.child("a2")
        assert a2.child("a1") is None  # pruned
        assert a2.child("a3") is not None  # still used by p2

    def test_remove_keeps_shared_nodes(self, populated_tree):
        populated_tree.remove("p3")
        core = populated_tree.root.child("core")
        assert core.child("b1") is not None  # p4 still attached there

    def test_remove_unknown_peer_raises(self, populated_tree):
        with pytest.raises(UnknownPeerError):
            populated_tree.remove("ghost")

    def test_remove_then_reinsert(self, populated_tree):
        populated_tree.remove("p5")
        populated_tree.insert(path("p5", ["core", "lmk"]))
        assert populated_tree.peer_count == 5


class TestDistances:
    def test_lca(self, populated_tree):
        assert populated_tree.lowest_common_ancestor("p1", "p2").router == "a2"
        assert populated_tree.lowest_common_ancestor("p1", "p3").router == "core"
        assert populated_tree.lowest_common_ancestor("p3", "p4").router == "b1"

    def test_tree_distance_matches_pairwise_formula(self, populated_tree):
        for peer_a in populated_tree.peers():
            for peer_b in populated_tree.peers():
                if peer_a == peer_b:
                    continue
                expected = tree_distance(
                    populated_tree.path_of(peer_a), populated_tree.path_of(peer_b)
                )
                assert populated_tree.tree_distance(peer_a, peer_b) == expected

    def test_tree_distance_values(self, populated_tree):
        assert populated_tree.tree_distance("p3", "p4") == 2
        assert populated_tree.tree_distance("p1", "p2") == 4
        # p1 -> a1 -> a2 -> core (3 hops) + core -> b1 -> p3 (2 hops).
        assert populated_tree.tree_distance("p1", "p3") == 5
        assert populated_tree.tree_distance("p5", "p3") == 3
        assert populated_tree.tree_distance("p1", "p1") == 0

    def test_all_pairs(self, populated_tree):
        pairs = populated_tree.all_pairs_tree_distance()
        assert len(pairs) == 5 * 4 // 2
        assert all(distance >= 2 for distance in pairs.values())


class TestClosestPeers:
    def test_returns_sorted_by_distance(self, populated_tree):
        result = populated_tree.closest_peers("p1", k=4)
        distances = [distance for _, distance in result]
        assert distances == sorted(distances)
        assert len(result) == 4

    def test_nearest_neighbour_is_sibling(self, populated_tree):
        result = populated_tree.closest_peers("p3", k=1)
        assert result == [("p4", 2)]

    def test_excludes_self(self, populated_tree):
        result = populated_tree.closest_peers("p1", k=10)
        assert all(peer != "p1" for peer, _ in result)

    def test_k_larger_than_population(self, populated_tree):
        result = populated_tree.closest_peers("p1", k=50)
        assert len(result) == 4

    def test_k_zero_returns_empty(self, populated_tree):
        assert populated_tree.closest_peers("p1", k=0) == []

    def test_exclude_set_respected(self, populated_tree):
        result = populated_tree.closest_peers("p3", k=3, exclude={"p4"})
        assert all(peer != "p4" for peer, _ in result)

    def test_distances_match_tree_distance(self, populated_tree):
        for peer, distance in populated_tree.closest_peers("p2", k=4):
            assert distance == populated_tree.tree_distance("p2", peer)

    def test_result_is_truly_the_k_closest(self, populated_tree):
        k = 2
        result = populated_tree.closest_peers("p1", k=k)
        returned = {peer for peer, _ in result}
        all_distances = sorted(
            populated_tree.tree_distance("p1", other)
            for other in populated_tree.peers()
            if other != "p1"
        )
        kth_best = all_distances[k - 1]
        assert all(distance <= kth_best for _, distance in result)


# ---------------------------------------------------------------------------
# Property-based tests: build random path populations and check invariants.
# ---------------------------------------------------------------------------

@st.composite
def random_paths(draw):
    """Generate a set of peer paths over a random small tree of routers."""
    n_peers = draw(st.integers(2, 12))
    paths = []
    for index in range(n_peers):
        depth = draw(st.integers(1, 5))
        # Peers share prefixes with probability by reusing small branch labels.
        branch = [f"r{draw(st.integers(0, 3))}-{level}" for level in range(depth)]
        routers = branch + ["lmk"]
        # Deduplicate while keeping order (RouterPath rejects duplicates).
        seen = set()
        unique = []
        for router in routers:
            if router not in seen:
                seen.add(router)
                unique.append(router)
        paths.append(RouterPath.from_routers(f"peer{index}", "lmk", unique))
    return paths


@settings(max_examples=40, deadline=None)
@given(paths=random_paths())
def test_property_tree_distance_symmetric_and_bounded(paths):
    tree = PathTree(landmark_id="lmk", landmark_router="lmk")
    for router_path in paths:
        tree.insert(router_path)
    peers = tree.peers()
    for i, peer_a in enumerate(peers):
        for peer_b in peers[i + 1 :]:
            forward = tree.tree_distance(peer_a, peer_b)
            backward = tree.tree_distance(peer_b, peer_a)
            assert forward == backward
            assert 2 <= forward
            # dtree can never exceed going all the way up to the landmark and
            # back down: hop_count(a) + hop_count(b).
            assert forward <= tree.path_of(peer_a).hop_count + tree.path_of(peer_b).hop_count


@settings(max_examples=40, deadline=None)
@given(paths=random_paths(), k=st.integers(1, 6))
def test_property_closest_peers_is_optimal_prefix(paths, k):
    """closest_peers(k) returns peers no farther than the true k-th closest."""
    tree = PathTree(landmark_id="lmk", landmark_router="lmk")
    for router_path in paths:
        tree.insert(router_path)
    origin = tree.peers()[0]
    others = [peer for peer in tree.peers() if peer != origin]
    true_distances = sorted(tree.tree_distance(origin, other) for other in others)
    result = tree.closest_peers(origin, k=k)
    assert len(result) == min(k, len(others))
    if result:
        kth_best = true_distances[len(result) - 1]
        assert all(distance <= kth_best for _, distance in result)
        returned_distances = [distance for _, distance in result]
        assert returned_distances == sorted(returned_distances)


@settings(max_examples=30, deadline=None)
@given(paths=random_paths())
def test_property_subtree_counts_consistent_after_removals(paths):
    """Subtree peer counts stay consistent while peers leave one by one."""
    tree = PathTree(landmark_id="lmk", landmark_router="lmk")
    for router_path in paths:
        tree.insert(router_path)
    while tree.peer_count > 0:
        assert tree.root.subtree_peer_count == tree.peer_count
        attached_everywhere = sum(
            len(node.attached_peers) for node in tree.root.iter_subtree()
        )
        assert attached_everywhere == tree.peer_count
        tree.remove(tree.peers()[0])


class TestInsertInstrumentation:
    """The insert-side work counters added by the interned arrival engine."""

    def test_insert_counts_touched_and_created(self):
        tree = PathTree(landmark_id="lmk", landmark_router="lmk")
        tree.insert(RouterPath.from_routers("a", "lmk", ["a1", "core", "lmk"]))
        assert tree.last_insert_nodes_touched == 3
        assert tree.last_insert_nodes_created == 2  # core + a1 (root pre-made)
        tree.insert(RouterPath.from_routers("b", "lmk", ["a1", "core", "lmk"]))
        assert tree.last_insert_nodes_touched == 3
        assert tree.last_insert_nodes_created == 0  # fully shared prefix
        assert tree.total_insert_nodes_created == 2
        assert tree.total_insert_nodes_touched == 6

    def test_lazy_root_counts_as_created(self):
        tree = PathTree(landmark_id="lmk")
        tree.insert(RouterPath.from_routers("a", "lmk", ["a1", "lmk"]))
        assert tree.last_insert_nodes_created == 2
        assert tree.last_insert_nodes_touched == 2

    def test_incremental_router_count_and_max_depth_track_churn(self):
        tree = PathTree(landmark_id="lmk", landmark_router="lmk")
        assert (tree.router_count, tree.max_depth()) == (1, 0)
        tree.insert(RouterPath.from_routers("a", "lmk", ["a2", "a1", "core", "lmk"]))
        assert (tree.router_count, tree.max_depth()) == (4, 3)
        tree.insert(RouterPath.from_routers("b", "lmk", ["b1", "core", "lmk"]))
        assert (tree.router_count, tree.max_depth()) == (5, 3)
        tree.remove("a")  # prunes the a2/a1 branch
        assert (tree.router_count, tree.max_depth()) == (3, 2)
        tree.remove("b")
        assert (tree.router_count, tree.max_depth()) == (1, 0)

    def test_incremental_aggregates_match_full_scan(self):
        import random as _random

        rng = _random.Random(7)
        tree = PathTree(landmark_id="lmk", landmark_router="lmk")
        alive = []
        for step in range(120):
            if alive and rng.random() < 0.4:
                victim = alive.pop(rng.randrange(len(alive)))
                tree.remove(victim)
            else:
                depth = rng.randrange(1, 5)
                routers = [f"r{rng.randrange(3)}-{level}" for level in range(depth)] + ["lmk"]
                seen, unique = set(), []
                for router in routers:
                    if router not in seen:
                        seen.add(router)
                        unique.append(router)
                peer = f"peer{step}"
                tree.insert(RouterPath.from_routers(peer, "lmk", unique))
                alive.append(peer)
            nodes = list(tree.root.iter_subtree())
            assert tree.router_count == len(nodes)
            assert tree.max_depth() == max(node.depth for node in nodes)
