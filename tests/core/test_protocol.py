"""Tests for the join-protocol message types."""

from __future__ import annotations

import pytest

from repro.core.path import RouterPath
from repro.core.protocol import (
    JoinRequest,
    JoinResponse,
    JoinTranscript,
    LandmarkDescriptor,
    LeaveNotice,
    NeighborRecommendation,
    NeighborResponse,
    PathReport,
)


class TestMessages:
    def test_join_response_builder(self):
        response = JoinResponse.for_landmarks("p1", [("lmA", 10), ("lmB", 20)])
        assert response.peer_id == "p1"
        assert len(response.landmarks) == 2
        assert response.landmarks[0] == LandmarkDescriptor(landmark_id="lmA", router=10)

    def test_path_report_exposes_landmark(self):
        path = RouterPath.from_routers("p1", "lmA", ["r1", "lmA"])
        report = PathReport(peer_id="p1", path=path)
        assert report.landmark_id == "lmA"

    def test_neighbor_response_builder(self):
        response = NeighborResponse.from_pairs("p1", [("p2", 3), ("p3", 5.0)])
        assert response.neighbor_ids() == ["p2", "p3"]
        assert response.neighbors[0] == NeighborRecommendation(peer_id="p2", estimated_distance=3.0)

    def test_messages_are_hashable_value_objects(self):
        assert JoinRequest(peer_id="p1") == JoinRequest(peer_id="p1")
        assert hash(LeaveNotice(peer_id="x")) == hash(LeaveNotice(peer_id="x"))

    def test_messages_are_immutable(self):
        request = JoinRequest(peer_id="p1")
        with pytest.raises(Exception):
            request.peer_id = "p2"  # type: ignore[misc]


class TestTranscript:
    def test_durations(self):
        transcript = JoinTranscript(peer_id="p1", probe_started_at=100.0)
        transcript.probe_finished_at = 180.0
        transcript.report_sent_at = 180.0
        transcript.neighbors_received_at = 210.0
        assert transcript.probe_duration == pytest.approx(80.0)
        assert transcript.setup_delay == pytest.approx(110.0)

    def test_incomplete_transcript_returns_none(self):
        transcript = JoinTranscript(peer_id="p1")
        assert transcript.probe_duration is None
        assert transcript.setup_delay is None
