"""Tests for the multi-process shard backend (codec, supervisor, faults).

Covers the wire-protocol building blocks, the ``ProcessShardBackend``'s
parity with an inline shard, the fault-injection contract (typed
``ShardUnavailableError`` naming the shard — never a hang or a pickle
traceback), supervisor restart with journal replay, and worker teardown
(no test may leave an orphaned process — enforced suite-wide by the
``no_leaked_workers`` autouse fixture in ``tests/conftest.py``).
"""

from __future__ import annotations

import os
import pickle
import random
import signal
import time

import pytest

from repro.core import ManagementServer, ShardBackend, ShardedManagementServer
from repro.core.path import RouterPath
from repro.core.remote import (
    DEFAULT_REQUEST_TIMEOUT,
    ProcessShardBackend,
    RecoveryPolicy,
    ShardSupervisor,
    decode_frame,
    decode_path,
    encode_frame,
    encode_path,
    process_shard_factory,
)
from repro.exceptions import (
    RegistrationError,
    ShardUnavailableError,
    UnknownPeerError,
    WireProtocolError,
)


def simple_path(peer, landmark, access="a1"):
    return RouterPath.from_routers(
        peer, landmark, [f"{landmark}-{access}", f"{landmark}-core", landmark]
    )


@pytest.fixture()
def backend():
    with ProcessShardBackend(neighbor_set_size=3, name="shard-under-test") as shard:
        yield shard


@pytest.fixture()
def pair():
    """A process shard and an inline twin fed identical operations."""
    inline = ManagementServer(neighbor_set_size=3, maintain_cache=False)
    with ProcessShardBackend(neighbor_set_size=3, name="shard-under-test") as shard:
        yield shard, inline


def seed_peers(*shards, landmark="lmA", count=4):
    for shard in shards:
        shard.register_landmark(landmark, landmark)
        shard.insert_paths(
            [simple_path(f"p{i}", landmark, access=f"a{i % 3}") for i in range(count)]
        )


class TestCodec:
    def test_path_round_trip(self):
        path = RouterPath.from_routers("p1", "lmA", ["a", "b", "lmA"], rtt_ms=12.5)
        assert decode_path(encode_path(path)) == path

    def test_malformed_path_rejected(self):
        with pytest.raises(WireProtocolError):
            decode_path(("not-a-path", 1, 2))

    def test_frame_round_trip(self):
        message = (7, "ok", (("p1", 2.0), ("p2", 4.0)))
        assert decode_frame(encode_frame(message)) == message

    def test_truncated_frame_rejected(self):
        frame = encode_frame((1, "ok", "value"))
        with pytest.raises(WireProtocolError):
            decode_frame(frame[:-1])
        with pytest.raises(WireProtocolError):
            decode_frame(frame[:2])

    def test_non_tuple_body_rejected(self):
        import struct

        body = pickle.dumps("just a string")
        with pytest.raises(WireProtocolError):
            decode_frame(struct.pack("!I", len(body)) + body)


class TestBackendParity:
    """The process shard answers byte-identically to an inline shard."""

    def test_satisfies_shard_backend_protocol(self, backend):
        assert isinstance(backend, ShardBackend)

    def test_local_closest_matches_inline(self, pair):
        shard, inline = pair
        seed_peers(shard, inline)
        for peer in ("p0", "p1", "p2", "p3"):
            for k in (1, 2, 5):
                assert shard.local_closest(peer, k) == inline.local_closest(peer, k)

    def test_fill_candidates_match_inline(self, pair):
        shard, inline = pair
        seed_peers(shard, inline)
        bases = {"lmA": 7.0}
        assert list(shard.fill_candidates(bases, exclude_peer="p0")) == list(
            inline.fill_candidates(bases, exclude_peer="p0")
        )

    def test_fill_stream_consumed_lazily_in_chunks(self):
        with ProcessShardBackend(neighbor_set_size=3, fill_chunk_size=2) as shard:
            seed_peers(shard, count=7)
            stream = shard.fill_candidates({"lmA": 1.0})
            first_two = [next(stream) for _ in range(2)]
            assert len(first_two) == 2
            stream.close()  # abandon early: fill_close tears the stream down
            # The channel stays healthy and ordered after an abandoned stream.
            assert shard.local_closest("p0", 2) == shard.local_closest("p0", 2)

    def test_stale_fill_stream_does_not_touch_a_restarted_worker(self):
        """Stream ids are scoped to one worker incarnation: after a restart,
        a stale consumer neither reads from nor tears down the fresh
        worker's streams (whose ids restart from 1)."""
        with ProcessShardBackend(neighbor_set_size=3, fill_chunk_size=2) as shard:
            seed_peers(shard, count=7)
            stale = shard.fill_candidates({"lmA": 1.0})
            next(stale)
            next(stale)  # drain the buffered chunk so the next pull hits the wire
            shard.restart()
            fresh = shard.fill_candidates({"lmA": 1.0})
            first = next(fresh)
            # Pulling the stale stream must fail typed, not read the fresh
            # worker's identically-numbered stream.
            with pytest.raises(ShardUnavailableError):
                next(stale)
            # And its finaliser must not close the fresh stream either.
            stale.close()
            remainder = [first] + list(fresh)
            assert remainder == list(shard.fill_candidates({"lmA": 1.0}))

    def test_first_rejected_path_matches_inline_in_one_round_trip(self, pair):
        shard, inline = pair
        seed_peers(shard, inline)
        good = simple_path("p9", "lmA", access="a9")
        bad = simple_path("px", "unknown-lm")
        assert shard.first_rejected_path([good]) is None
        assert inline.first_rejected_path([good]) is None
        for batch in ([bad], [good, bad], [good, bad, bad]):
            process_result = shard.first_rejected_path(batch)
            inline_result = inline.first_rejected_path(batch)
            assert process_result is not None and inline_result is not None
            assert process_result[0] == inline_result[0]
            assert type(process_result[1]) is type(inline_result[1])
            assert str(process_result[1]) == str(inline_result[1])

    def test_errors_cross_the_boundary_with_type_and_message(self, pair):
        shard, inline = pair

        def outcome(target, action):
            try:
                action(target)
                return None
            except Exception as error:  # noqa: BLE001
                return (type(error).__name__, str(error))

        for action in (
            lambda s: s.validate_registrable(simple_path("px", "unknown-lm")),
            lambda s: s.unregister_peer("ghost"),
            lambda s: s.local_closest("ghost", 3),
            lambda s: s.tree("unknown-lm"),
        ):
            process_outcome = outcome(shard, action)
            inline_outcome = outcome(inline, action)
            assert process_outcome == inline_outcome
            assert process_outcome is not None

    def test_rebuilt_errors_are_real_exception_types(self, backend):
        with pytest.raises(UnknownPeerError):
            backend.unregister_peer("ghost")
        with pytest.raises(RegistrationError):
            backend.validate_registrable(simple_path("px", "unknown-lm"))

    def test_tree_returns_an_isolated_snapshot(self, pair):
        shard, inline = pair
        seed_peers(shard, inline)
        snapshot = shard.tree("lmA")
        assert snapshot.peers() == inline.tree("lmA").peers()
        assert snapshot.tree_distance("p0", "p1") == inline.tree("lmA").tree_distance("p0", "p1")
        snapshot.remove("p0")  # mutating the snapshot must not reach the worker
        assert "p0" in shard.tree("lmA").peers()

    def test_tree_distance_is_one_scalar_round_trip(self, pair):
        shard, inline = pair
        seed_peers(shard, inline)
        assert shard.tree_distance("lmA", "p0", "p1") == inline.tree_distance("lmA", "p0", "p1")

        def outcome(target, landmark, a, b):
            try:
                return ("ok", target.tree_distance(landmark, a, b))
            except Exception as error:  # noqa: BLE001
                return (type(error).__name__, str(error))

        assert outcome(shard, "lmA", "p0", "ghost") == outcome(inline, "lmA", "p0", "ghost")
        assert outcome(shard, "nope", "p0", "p1") == outcome(inline, "nope", "p0", "p1")

    def test_tree_visit_counters_travel_with_the_snapshot(self, backend):
        seed_peers(backend)
        assert backend.total_tree_visits() == 0
        backend.local_closest("p0", 2)
        visits = backend.total_tree_visits()
        assert visits > 0
        assert backend.tree("lmA").total_query_visits == visits

    def test_worker_stats_reflect_worker_side_operations(self, backend):
        seed_peers(backend)
        stats = backend.worker_stats()
        assert stats["registrations"] == 4


class TestFaultInjection:
    """Crash mid-churn => typed error naming the shard, never a hang."""

    def make_plane(self, shard_count=2, k=3):
        distances = {("lmA", "lmB"): 4.0}
        server = ShardedManagementServer(
            shard_count,
            neighbor_set_size=k,
            landmark_distances=distances,
            shard_factory=process_shard_factory(k),
        )
        for landmark in ("lmA", "lmB"):
            server.register_landmark(landmark, landmark)
        return server

    def test_killed_worker_raises_typed_error_naming_the_shard(self):
        server = self.make_plane()
        try:
            server.register_peers(
                [simple_path(f"p{i}", "lmA", access=f"a{i}") for i in range(4)]
            )
            victim_index = server.peer_shard("p0")
            victim = server.shards[victim_index]
            victim.supervisor.process.kill()
            victim.supervisor.process.join()
            with pytest.raises(ShardUnavailableError) as departure_error:
                server.unregister_peer("p0")
            assert victim.name in str(departure_error.value)
            with pytest.raises(ShardUnavailableError) as arrival_error:
                server.register_peer(simple_path("p9", "lmA", access="a9"))
            assert victim.name in str(arrival_error.value)
            assert not victim.health_check()
        finally:
            server.close()

    def test_failed_departure_leaves_coordinator_unchanged(self):
        server = self.make_plane()
        try:
            server.register_peers([simple_path("p0", "lmA"), simple_path("p1", "lmA", "a2")])
            victim = server.shards[server.peer_shard("p0")]
            victim.supervisor.process.kill()
            victim.supervisor.process.join()
            with pytest.raises(ShardUnavailableError):
                server.unregister_peer("p0")
            # The shard was told first, so the failed departure must not have
            # half-applied: the coordinator still knows the peer and its path.
            assert server.has_peer("p0")
            assert server.peer_path("p0") == simple_path("p0", "lmA")
        finally:
            server.close()

    def test_cached_queries_keep_answering_while_a_shard_is_down(self):
        """Discovery keeps serving warm queries through a shard outage."""
        server = self.make_plane()
        try:
            server.register_peers(
                [simple_path(f"p{i}", "lmA", access=f"a{i % 2}") for i in range(4)]
            )
            before = {peer: server.closest_peers(peer) for peer in server.peers()}
            victim = server.shards[server.peer_shard("p0")]
            victim.supervisor.process.kill()
            victim.supervisor.process.join()
            for peer, answer in before.items():
                assert server.closest_peers(peer) == answer
        finally:
            server.close()

    def test_restart_with_replay_restores_byte_identical_answers(self):
        """Kill mid-churn, restart, replay: answers match a reference server."""
        reference = ManagementServer(neighbor_set_size=3, landmark_distances={("lmA", "lmB"): 4.0})
        for landmark in ("lmA", "lmB"):
            reference.register_landmark(landmark, landmark)
        server = self.make_plane()
        try:
            churn = [
                ("arrive", simple_path("p0", "lmA", "a0")),
                ("arrive", simple_path("p1", "lmA", "a1")),
                ("arrive", simple_path("p2", "lmB", "a0")),
                ("arrive", simple_path("p3", "lmA", "a0")),
                ("depart", "p1"),
                ("arrive", simple_path("p1", "lmA", "a2")),
            ]
            for kind, payload in churn:
                if kind == "arrive":
                    server.register_peer(payload)
                    reference.register_peer(payload)
                else:
                    server.unregister_peer(payload)
                    reference.unregister_peer(payload)
            victim_index = server.peer_shard("p0")
            victim = server.shards[victim_index]
            victim.supervisor.process.kill()
            victim.supervisor.process.join()
            with pytest.raises(ShardUnavailableError):
                server.unregister_peer("p0")

            victim.restart()
            assert victim.health_check()
            for peer in reference.peers():
                for k in (1, 3, 5):
                    assert server.closest_peers(peer, k) == reference.closest_peers(peer, k)
                assert server.peer_path(peer) == reference.peer_path(peer)
            # And the recovered shard keeps serving writes.
            server.unregister_peer("p0")
            reference.unregister_peer("p0")
            assert server.closest_peers("p3") == reference.closest_peers("p3")
        finally:
            server.close()

    def test_mid_batch_crash_recovers_via_restart_replay_reregister(self):
        """A crash between batch validation and a shard's insert must not
        strand phantom peers: the documented recovery — restart, replay the
        journal, re-register the batch — converges to the reference state."""
        reference = ManagementServer(neighbor_set_size=3, landmark_distances={("lmA", "lmB"): 4.0})
        for landmark in ("lmA", "lmB"):
            reference.register_landmark(landmark, landmark)
        server = self.make_plane()
        try:
            victim_index = server.shard_of("lmA")
            victim = server.shards[victim_index]
            batch = [
                simple_path("p0", "lmA", "a0"),
                simple_path("p1", "lmB", "a0"),
                simple_path("p2", "lmA", "a1"),
            ]

            original_insert = victim.insert_paths

            def crash_before_insert(paths, validate=True):
                victim.supervisor.process.kill()
                victim.supervisor.process.join()
                return original_insert(paths, validate=validate)

            victim.insert_paths = crash_before_insert
            with pytest.raises(ShardUnavailableError):
                server.register_peers(batch)
            victim.insert_paths = original_insert

            victim.restart()
            assert victim.health_check()
            # The coordinator may be ahead of the replayed shard (it recorded
            # peers whose insert never landed); re-registering the batch must
            # reconverge instead of dead-ending on a phantom peer.
            server.register_peers(batch)
            reference.register_peers(batch)
            assert server.peers() == reference.peers()
            for peer in reference.peers():
                assert server.closest_peers(peer) == reference.closest_peers(peer)
            # Phantom-free from here on: departures work on every batch member.
            server.unregister_peer("p0")
            reference.unregister_peer("p0")
            assert server.peers() == reference.peers()
        finally:
            server.close()

    def test_journal_records_only_acknowledged_mutations(self):
        with ProcessShardBackend(neighbor_set_size=2, name="journaled") as shard:
            shard.register_landmark("lmA", "lmA")
            shard.insert_paths([simple_path("p0", "lmA")])
            with pytest.raises(UnknownPeerError):
                shard.unregister_peer("ghost")  # rejected => not journaled
            ops = [op for op, _ in shard.supervisor.journal]
            assert ops == ["register_landmark", "insert_paths"]


class TestSupervisorLifecycle:
    def test_factory_names_shards_in_spawn_order(self):
        factory = process_shard_factory(neighbor_set_size=2)
        shards = [factory() for _ in range(3)]
        try:
            assert [shard.name for shard in shards] == ["shard-0", "shard-1", "shard-2"]
        finally:
            for shard in shards:
                shard.close()

    def test_close_is_idempotent_and_reaps_the_worker(self):
        shard = ProcessShardBackend(neighbor_set_size=2)
        process = shard.supervisor.process
        shard.close()
        assert not process.is_alive()
        assert process.exitcode is not None
        shard.close()  # second close is a no-op

    def test_requests_after_close_raise_typed_error(self):
        shard = ProcessShardBackend(neighbor_set_size=2)
        shard.close()
        with pytest.raises(ShardUnavailableError):
            shard.local_closest("p0", 1)
        with pytest.raises(ShardUnavailableError):
            shard.restart()
        assert not shard.health_check()

    def test_supervisor_health_check_round_trip(self):
        supervisor = ShardSupervisor(name="probe", neighbor_set_size=2)
        try:
            assert supervisor.health_check()
            supervisor.process.kill()
            supervisor.process.join()
            assert not supervisor.health_check()
        finally:
            supervisor.close()

    def test_sharded_plane_close_reaps_every_worker(self):
        server = ShardedManagementServer(
            3, neighbor_set_size=2, shard_factory=process_shard_factory(2)
        )
        processes = [shard.supervisor.process for shard in server.shards]
        assert all(process.is_alive() for process in processes)
        server.close()
        assert all(not process.is_alive() for process in processes)
        server.close()  # idempotent at the coordinator level too

    def test_context_manager_closes_the_plane(self):
        with ShardedManagementServer(
            2, neighbor_set_size=2, shard_factory=process_shard_factory(2)
        ) as server:
            processes = [shard.supervisor.process for shard in server.shards]
        assert all(not process.is_alive() for process in processes)


class TestRecoveryPolicy:
    def test_backoff_grows_geometrically_up_to_the_cap(self):
        policy = RecoveryPolicy(
            backoff_base_s=0.1, backoff_multiplier=2.0, backoff_cap_s=0.5, jitter=0.0
        )
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.4)
        assert policy.backoff_s(4) == pytest.approx(0.5)  # capped
        assert policy.backoff_s(9) == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_bounded(self):
        def delays(seed):
            policy = RecoveryPolicy(
                backoff_base_s=0.1, backoff_cap_s=10.0, jitter=0.1, rng=random.Random(seed)
            )
            return [policy.backoff_s(attempt) for attempt in range(1, 6)]

        assert delays(7) == delays(7)  # same seed => same schedule
        plain = RecoveryPolicy(backoff_base_s=0.1, backoff_cap_s=10.0, jitter=0.0)
        for attempt, jittered in enumerate(delays(7), start=1):
            base = plain.backoff_s(attempt)
            assert base * 0.9 <= jittered <= base * 1.1

    def test_no_rng_means_no_jitter(self):
        policy = RecoveryPolicy(backoff_base_s=0.1, jitter=0.5)
        assert policy.backoff_s(1) == pytest.approx(0.1)

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            RecoveryPolicy().backoff_s(0)


def recovery_backend(**kwargs):
    """A process shard that self-heals with zero backoff (fast tests)."""
    policy = RecoveryPolicy(max_restarts=2, backoff_base_s=0.0, sleep=lambda _delay: None)
    kwargs.setdefault("name", "healing")
    return ProcessShardBackend(neighbor_set_size=3, recovery=policy, **kwargs)


def kill_worker(shard):
    shard.supervisor.process.kill()
    shard.supervisor.process.join()


class TestSelfHealing:
    """With a RecoveryPolicy, transient worker deaths heal transparently."""

    def test_transient_crash_heals_via_restart_replay_reissue(self):
        reference = ManagementServer(neighbor_set_size=3, maintain_cache=False)
        with recovery_backend() as shard:
            seed_peers(shard, reference)
            kill_worker(shard)
            # The very next request triggers restart+replay+re-issue: no
            # exception reaches the caller and the answer is byte-identical.
            assert shard.local_closest("p0", 3) == reference.local_closest("p0", 3)
            assert shard.supervisor.epoch == 2
            # The healed worker keeps taking (journaled) writes.
            shard.insert_paths([simple_path("p9", "lmA", "a9")])
            reference.insert_paths([simple_path("p9", "lmA", "a9")])
            assert shard.local_closest("p9", 3) == reference.local_closest("p9", 3)

    def test_recoverable_mutations_are_journaled_exactly_once(self):
        with recovery_backend() as shard:
            shard.register_landmark("lmA", "lmA")
            kill_worker(shard)
            shard.insert_paths([simple_path("p0", "lmA")])  # heals, then applies
            ops = [op for op, _ in shard.supervisor.journal]
            assert ops == ["register_landmark", "insert_paths"]

    def test_recovery_exhaustion_raises_the_typed_error(self, monkeypatch):
        with recovery_backend() as shard:
            seed_peers(shard)
            original_restart = shard.supervisor.restart

            def restart_then_die_again():
                original_restart()
                kill_worker(shard)

            monkeypatch.setattr(shard.supervisor, "restart", restart_then_die_again)
            kill_worker(shard)
            with pytest.raises(ShardUnavailableError) as error:
                shard.local_closest("p0", 2)
            assert "healing" in str(error.value)

    def test_recovery_sleeps_the_scripted_backoff(self):
        slept = []
        policy = RecoveryPolicy(
            max_restarts=2, backoff_base_s=0.05, jitter=0.0, sleep=slept.append
        )
        with ProcessShardBackend(neighbor_set_size=3, recovery=policy) as shard:
            seed_peers(shard)
            kill_worker(shard)
            shard.local_closest("p0", 2)
            assert slept == [pytest.approx(0.05)]

    def test_fill_stream_heals_mid_pull_without_gaps_or_repeats(self):
        reference = ManagementServer(neighbor_set_size=3, maintain_cache=False)
        with recovery_backend(fill_chunk_size=2) as shard:
            seed_peers(shard, reference, count=7)
            expected = list(reference.fill_candidates({"lmA": 1.0}))
            assert len(expected) >= 5  # the kill lands genuinely mid-stream
            stream = shard.fill_candidates({"lmA": 1.0})
            got = [next(stream), next(stream)]  # drain the buffered chunk
            kill_worker(shard)
            got.extend(stream)  # reopen on the replayed worker, fast-forward
            assert got == expected
            assert shard.supervisor.epoch == 2

    def test_fill_stream_without_recovery_fails_typed_never_partial(self):
        with ProcessShardBackend(
            neighbor_set_size=3, fill_chunk_size=2, name="fragile"
        ) as shard:
            seed_peers(shard, count=7)
            stream = shard.fill_candidates({"lmA": 1.0})
            next(stream)
            next(stream)  # the next pull must hit the wire
            kill_worker(shard)
            with pytest.raises(ShardUnavailableError) as error:
                list(stream)
            assert "fragile" in str(error.value)


class TestJournalCompaction:
    def test_journal_property_is_an_immutable_snapshot(self):
        with ProcessShardBackend(neighbor_set_size=2, name="journaled") as shard:
            shard.register_landmark("lmA", "lmA")
            snapshot = shard.supervisor.journal
            assert isinstance(snapshot, tuple)
            shard.insert_paths([simple_path("p0", "lmA")])
            assert len(snapshot) == 1  # the earlier view did not grow
            assert shard.supervisor.journal_length == 2
            assert shard.supervisor.journal[1][0] == "insert_paths"

    def test_compact_replaces_history_with_one_snapshot_entry(self):
        reference = ManagementServer(neighbor_set_size=3, maintain_cache=False)
        with ProcessShardBackend(neighbor_set_size=3, name="compacted") as shard:
            seed_peers(shard, reference)
            for cycle in range(5):  # churn: history >> live state
                shard.unregister_peer("p0")
                reference.unregister_peer("p0")
                shard.insert_paths([simple_path("p0", "lmA", "a0")])
                reference.insert_paths([simple_path("p0", "lmA", "a0")])
            long_journal = shard.supervisor.journal_length
            size = shard.compact()
            assert size > 0
            assert shard.supervisor.last_snapshot_bytes == size
            assert shard.supervisor.journal_length == 1 < long_journal
            assert shard.supervisor.journal[0][0] == "restore_state"
            shard.restart()  # replay is now one snapshot restore
            for peer in ("p0", "p1", "p2", "p3"):
                for k in (1, 3, 5):
                    assert shard.local_closest(peer, k) == reference.local_closest(peer, k)

    def test_watermark_auto_compacts_during_normal_traffic(self):
        reference = ManagementServer(neighbor_set_size=2, maintain_cache=False)
        reference.register_landmark("lmA", "lmA")
        with ProcessShardBackend(
            neighbor_set_size=2, name="watermarked", compact_watermark=4
        ) as shard:
            shard.register_landmark("lmA", "lmA")
            for i in range(7):
                path = simple_path(f"p{i}", "lmA", access=f"a{i % 3}")
                shard.insert_paths([path])
                reference.insert_paths([path])
                assert shard.supervisor.journal_length <= 4
            assert any(op == "restore_state" for op, _ in shard.supervisor.journal)
            shard.restart()
            for i in range(7):
                assert shard.local_closest(f"p{i}", 2) == reference.local_closest(f"p{i}", 2)

    def test_compact_watermark_must_be_positive(self):
        with pytest.raises(ValueError):
            ShardSupervisor(name="bad", neighbor_set_size=2, compact_watermark=0)


class FakeClock:
    """An injectable monotonic clock tests advance by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRequestDeadline:
    """Satellite (a): every round trip carries a deadline — a hung worker
    (alive but not answering) turns into a typed error, never a hang."""

    def test_every_round_trip_has_a_default_deadline(self):
        supervisor = ShardSupervisor(name="dl", neighbor_set_size=2, request_timeout=None)
        try:
            assert supervisor.request_timeout == DEFAULT_REQUEST_TIMEOUT
        finally:
            supervisor.close()

    def test_recovery_op_deadline_overrides_the_request_timeout(self):
        policy = RecoveryPolicy(op_deadline_s=1.5)
        supervisor = ShardSupervisor(name="dl2", neighbor_set_size=2, recovery=policy)
        try:
            assert supervisor.request_timeout == 1.5
        finally:
            supervisor.close()

    def test_probe_and_reply_wait_share_one_deadline_budget(self, monkeypatch):
        """Regression: the writability probe and the reply wait used to each
        get a FULL ``request_timeout``, so a slow-draining pipe feeding a
        hung worker could stall a caller for 2x the configured timeout.
        Both phases now draw from one monotonic ``DeadlineBudget``."""
        clock = FakeClock()
        supervisor = ShardSupervisor(
            name="budgeted", neighbor_set_size=2, request_timeout=10.0, clock=clock
        )
        real_conn = supervisor._conn
        try:
            probe_timeouts, poll_timeouts = [], []

            def slow_probe(conn, timeout):
                probe_timeouts.append(timeout)
                clock.advance(6.0)  # the pipe drained slowly
                return True

            class HungConn:
                def send_bytes(self, frame):
                    pass

                def poll(self, timeout):
                    poll_timeouts.append(timeout)
                    clock.advance(timeout)  # the worker never answers
                    return False

            monkeypatch.setattr(ShardSupervisor, "_writable", staticmethod(slow_probe))
            supervisor._conn = HungConn()
            started = clock.now
            with pytest.raises(ShardUnavailableError) as error:
                supervisor.request("ping", (), recoverable=False)
            assert "within timeout" in str(error.value)
            assert probe_timeouts == [pytest.approx(10.0)]
            # The reply wait got only what the probe left over...
            assert poll_timeouts == [pytest.approx(4.0)]
            # ...so the whole round trip is bounded by ONE request_timeout.
            assert clock.now - started == pytest.approx(10.0)
        finally:
            supervisor._conn = real_conn
            supervisor._poisoned = None  # poisoned by the simulated hang
            supervisor.close()

    def test_exhausted_budget_degrades_to_a_non_blocking_reply_probe(self, monkeypatch):
        """A probe that eats the whole budget leaves ``remaining() == 0``:
        the reply wait must poll non-blocking, never with a negative or
        full-size timeout."""
        clock = FakeClock()
        supervisor = ShardSupervisor(
            name="exhausted", neighbor_set_size=2, request_timeout=10.0, clock=clock
        )
        real_conn = supervisor._conn
        try:
            poll_timeouts = []

            def overrunning_probe(conn, timeout):
                clock.advance(12.0)  # past the deadline before the send
                return True

            class SilentConn:
                def send_bytes(self, frame):
                    pass

                def poll(self, timeout):
                    poll_timeouts.append(timeout)
                    return False

            monkeypatch.setattr(
                ShardSupervisor, "_writable", staticmethod(overrunning_probe)
            )
            supervisor._conn = SilentConn()
            with pytest.raises(ShardUnavailableError):
                supervisor.request("ping", (), recoverable=False)
            assert poll_timeouts == [0.0]
        finally:
            supervisor._conn = real_conn
            supervisor._poisoned = None
            supervisor.close()

    def test_hung_worker_times_out_typed_instead_of_hanging(self):
        with ProcessShardBackend(
            neighbor_set_size=2, name="hung", request_timeout=0.5
        ) as shard:
            shard.register_landmark("lmA", "lmA")
            process = shard.supervisor.process
            os.kill(process.pid, signal.SIGSTOP)  # alive, but answering nothing
            try:
                started = time.monotonic()
                with pytest.raises(ShardUnavailableError) as error:
                    shard.local_closest("p0", 1)
                assert time.monotonic() - started < 5.0
                assert "within timeout" in str(error.value)
                # The channel is poisoned: later requests fail fast and
                # typed until restart() — never a second hang.
                with pytest.raises(ShardUnavailableError):
                    shard.local_closest("p0", 1)
            finally:
                os.kill(process.pid, signal.SIGCONT)
