"""Property-based tests for the management server's end-to-end invariants.

These complement the unit tests with randomly generated peer populations:
whatever paths peers report, the server must keep its answers consistent with
the underlying path trees, symmetric, and stable under arrival order.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.management_server import ManagementServer
from repro.core.path import RouterPath, tree_distance


@st.composite
def peer_populations(draw):
    """Random peer populations over a 2-landmark, 3-level access hierarchy."""
    landmark_of = {}
    paths = []
    n_peers = draw(st.integers(2, 14))
    for index in range(n_peers):
        landmark = draw(st.sampled_from(["lmA", "lmB"]))
        region = draw(st.integers(0, 2))
        pop = draw(st.integers(0, 2))
        depth = draw(st.integers(0, 2))
        routers = []
        if depth >= 2:
            routers.append(f"{landmark}-acc-{region}-{pop}")
        if depth >= 1:
            routers.append(f"{landmark}-pop-{region}-{pop}")
        routers.extend([f"{landmark}-region-{region}", f"{landmark}-core", landmark])
        peer_id = f"peer{index}"
        landmark_of[peer_id] = landmark
        paths.append(RouterPath.from_routers(peer_id, landmark, routers))
    return paths, landmark_of


def build_server(paths, neighbor_set_size=3, maintain_cache=True):
    server = ManagementServer(
        neighbor_set_size=neighbor_set_size,
        maintain_cache=maintain_cache,
        landmark_distances={("lmA", "lmB"): 6.0},
    )
    server.register_landmark("lmA", "lmA")
    server.register_landmark("lmB", "lmB")
    for path in paths:
        server.register_peer(path)
    return server


@settings(max_examples=40, deadline=None)
@given(population=peer_populations())
def test_property_estimates_symmetric_and_consistent_with_paths(population):
    """estimate_distance is symmetric and matches the pairwise path formula."""
    paths, landmark_of = population
    server = build_server(paths)
    by_peer = {path.peer_id: path for path in paths}
    peers = list(by_peer)
    for i, peer_a in enumerate(peers):
        for peer_b in peers[i + 1 :]:
            forward = server.estimate_distance(peer_a, peer_b)
            backward = server.estimate_distance(peer_b, peer_a)
            assert forward == backward
            if landmark_of[peer_a] == landmark_of[peer_b]:
                expected = tree_distance(by_peer[peer_a], by_peer[peer_b])
                assert forward == expected
            else:
                assert forward == by_peer[peer_a].hop_count + 6.0 + by_peer[peer_b].hop_count


@settings(max_examples=40, deadline=None)
@given(population=peer_populations(), k=st.integers(1, 5))
def test_property_neighbor_answers_are_valid(population, k):
    """Neighbour lists never contain the peer itself, duplicates, or bad distances."""
    paths, _ = population
    server = build_server(paths, neighbor_set_size=k)
    for path in paths:
        answer = server.closest_peers(path.peer_id, k=k)
        ids = [peer for peer, _ in answer]
        assert path.peer_id not in ids
        assert len(ids) == len(set(ids))
        assert len(ids) <= k
        for peer, distance in answer:
            assert distance >= 2.0
            assert distance == server.estimate_distance(path.peer_id, peer)


@settings(max_examples=25, deadline=None)
@given(population=peer_populations())
def test_property_arrival_order_does_not_change_tree_distances(population):
    """Registering the same peers in any order yields the same distance estimates."""
    paths, _ = population
    forward_server = build_server(paths)
    reverse_server = build_server(list(reversed(paths)))
    peers = [path.peer_id for path in paths]
    for i, peer_a in enumerate(peers):
        for peer_b in peers[i + 1 :]:
            assert forward_server.estimate_distance(peer_a, peer_b) == reverse_server.estimate_distance(
                peer_a, peer_b
            )


@settings(max_examples=25, deadline=None)
@given(population=peer_populations())
def test_property_unregistering_everyone_empties_the_server(population):
    """Register-then-unregister leaves no residual state behind."""
    paths, _ = population
    server = build_server(paths)
    for path in paths:
        server.unregister_peer(path.peer_id)
    assert server.peer_count == 0
    for landmark in server.landmarks():
        assert server.tree(landmark).peer_count == 0
        assert server.tree(landmark).root is None or server.tree(landmark).root.subtree_peer_count == 0
