"""Serving-plane oracles: snapshots are byte-identical and epoch-consistent.

Two properties make the lock-free read path safe, and both are enforced
here:

* **Byte-identity** — a :class:`~repro.core.serving.DiscoverySnapshot`
  built from any plane (single server, or the sharded coordinator at 1–8
  shards) answers ``closest_peers`` / ``neighbor_list`` /
  ``estimate_distance`` / every read accessor exactly like the live plane
  at the same epoch, for randomized operation histories (hypothesis).
* **Single-generation consistency** — readers racing the publisher across
  thread preemption observe, per query, state belonging to exactly one
  published generation: every sampled answer matches the reference replay
  of that generation, never a torn mix of two epochs.
"""

from __future__ import annotations

import pickle
import threading
import time
from typing import Dict, List, Optional, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ManagementServer, ShardedManagementServer
from repro.core.path import RouterPath
from repro.core.serving import DiscoverySnapshot, SnapshotPublisher, SnapshotReader

MAX_PEERS = 20
MAX_LANDMARKS = 4


def landmark_name(index: int) -> str:
    return f"lm{index}"


def make_path(peer_id: str, landmark_index: int, shape: Tuple[int, int, int]) -> RouterPath:
    """A synthetic 5-router path under one landmark's disjoint hierarchy."""
    landmark = landmark_name(landmark_index)
    region, pop, access = shape
    routers = [
        f"{landmark}-acc-{region}-{pop}-{access}",
        f"{landmark}-pop-{region}-{pop}",
        f"{landmark}-reg-{region}",
        f"{landmark}-core",
        landmark,
    ]
    return RouterPath.from_routers(peer_id, landmark, routers)


def landmark_distances(landmark_count: int):
    return {
        (landmark_name(i), landmark_name(j)): float(1 + abs(i - j))
        for i in range(landmark_count)
        for j in range(landmark_count)
        if i < j
    }


def build_plane(shard_count, landmark_count, with_distances, maintain_cache, k):
    """``shard_count=None`` builds the single server, else inline shards."""
    distances = landmark_distances(landmark_count) if with_distances else None
    if shard_count is None:
        plane = ManagementServer(
            neighbor_set_size=k, maintain_cache=maintain_cache, landmark_distances=distances
        )
    else:
        plane = ShardedManagementServer(
            shard_count,
            neighbor_set_size=k,
            maintain_cache=maintain_cache,
            landmark_distances=distances,
        )
    for index in range(landmark_count):
        plane.register_landmark(landmark_name(index), landmark_name(index))
    return plane


def apply_op(plane, op):
    try:
        kind = op[0]
        if kind == "arrive":
            _, peer_index, lm_index, shape = op
            return ("ok", plane.register_peer(make_path(f"p{peer_index}", lm_index, shape)))
        if kind == "batch":
            _, specs = op
            return (
                "ok",
                plane.register_peers(
                    [make_path(f"p{i}", lm, shape) for i, lm, shape in specs]
                ),
            )
        if kind == "depart":
            _, peer_index = op
            return ("ok", plane.unregister_peer(f"p{peer_index}"))
        raise AssertionError(f"unknown op {op!r}")
    except Exception as error:  # noqa: BLE001 - errors are part of the contract
        return ("error", type(error).__name__, str(error))


def probe(target, peer_a, peer_b):
    try:
        return ("ok", target.estimate_distance(peer_a, peer_b))
    except Exception as error:  # noqa: BLE001
        return ("error", type(error).__name__, str(error))


def assert_snapshot_matches_live(snapshot: DiscoverySnapshot, plane) -> None:
    """The full read surface, compared byte for byte.

    Read-only comparisons first: a live ``closest_peers`` with
    ``k >= neighbor_set_size`` refills the cache (a mutation), so the
    big-``k`` sweep runs last — its answers must still match, and the
    small-``k``/``neighbor_list`` checks must not be polluted by it.
    """
    assert snapshot.peers() == plane.peers()
    assert snapshot.peer_count == plane.peer_count
    assert snapshot.landmarks() == plane.landmarks()
    for landmark in plane.landmarks():
        assert snapshot.landmark_router(landmark) == plane.landmark_router(landmark)
    for peer in plane.peers():
        assert snapshot.has_peer(peer)
        assert snapshot.peer_path(peer) == plane.peer_path(peer)
        assert snapshot.peer_landmark(peer) == plane.peer_landmark(peer)
        assert snapshot.neighbor_list(peer) == plane.neighbor_list(peer)
        assert snapshot.compact_index(peer) == plane._interner.index(peer)
        for k in (1, plane.neighbor_set_size):
            assert snapshot.closest_peers(peer, k) == plane.closest_peers(peer, k), (peer, k)
        assert snapshot.closest_peers(peer) == plane.closest_peers(peer)
    sample = plane.peers()[:8]
    for peer_a in sample:
        for peer_b in sample:
            assert probe(snapshot, peer_a, peer_b) == probe(plane, peer_a, peer_b)
    for peer in plane.peers():  # cache-refilling queries last (see docstring)
        big = plane.neighbor_set_size + 3
        assert snapshot.closest_peers(peer, big) == plane.closest_peers(peer, big)
    ghost = "never-registered"
    assert not snapshot.has_peer(ghost)
    for reader_error in (
        lambda: snapshot.closest_peers(ghost),
        lambda: snapshot.neighbor_list(ghost),
        lambda: snapshot.peer_landmark(ghost),
        lambda: snapshot.peer_path(ghost),
    ):
        with pytest.raises(Exception) as caught:
            reader_error()
        assert type(caught.value).__name__ == "UnknownPeerError"


@st.composite
def serving_cases(draw):
    landmark_count = draw(st.integers(1, MAX_LANDMARKS))
    shard_count = draw(st.sampled_from([None, 1, 2, 3, 5, 8]))
    with_distances = draw(st.booleans())
    maintain_cache = draw(st.booleans())
    k = draw(st.integers(1, 4))
    shape = st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 3))
    peer = st.integers(0, MAX_PEERS - 1)
    lm = st.integers(0, landmark_count - 1)
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("arrive"), peer, lm, shape),
                st.tuples(
                    st.just("batch"),
                    st.lists(st.tuples(peer, lm, shape), min_size=1, max_size=5),
                ),
                st.tuples(st.just("depart"), peer),
            ),
            min_size=1,
            max_size=30,
        )
    )
    return landmark_count, shard_count, with_distances, maintain_cache, k, ops


class TestSnapshotByteIdentity:
    @settings(deadline=None)
    @given(case=serving_cases())
    def test_snapshot_matches_live_plane(self, case):
        landmark_count, shard_count, with_distances, maintain_cache, k, ops = case
        plane = build_plane(shard_count, landmark_count, with_distances, maintain_cache, k)
        try:
            for op in ops:
                apply_op(plane, op)
            snapshot = DiscoverySnapshot.build(plane, generation=7)
            assert snapshot.generation == 7
            assert_snapshot_matches_live(snapshot, plane)
        finally:
            plane.close()

    @pytest.mark.parametrize("shard_count", [None, 1, 2, 4, 8])
    def test_churned_plane_snapshot_is_byte_identical(self, shard_count):
        """A fixed long churn history, including departures that gap the
        compact-index space — the case a re-interning restore would break."""
        plane = build_plane(shard_count, 3, True, True, 3)
        try:
            import random

            rng = random.Random(77)
            for step in range(160):
                action = rng.random()
                if action < 0.55:
                    apply_op(plane, ("arrive", rng.randrange(MAX_PEERS), rng.randrange(3), _shape(rng)))
                elif action < 0.7:
                    apply_op(
                        plane,
                        (
                            "batch",
                            [
                                (rng.randrange(MAX_PEERS), rng.randrange(3), _shape(rng))
                                for _ in range(rng.randrange(1, 4))
                            ],
                        ),
                    )
                else:
                    apply_op(plane, ("depart", rng.randrange(MAX_PEERS)))
            snapshot = DiscoverySnapshot.build(plane)
            assert_snapshot_matches_live(snapshot, plane)
        finally:
            plane.close()

    def test_snapshot_slots_are_keyed_by_compact_index(self):
        plane = build_plane(None, 1, False, True, 3)
        for i in range(6):
            apply_op(plane, ("arrive", i, 0, (i % 3, 0, 0)))
        plane.unregister_peer("p1")
        plane.unregister_peer("p3")
        snapshot = DiscoverySnapshot.build(plane)
        # Slots ascend in compact-index order and the table is carried.
        assert list(snapshot._compact_indices) == sorted(snapshot._compact_indices)
        for peer in plane.peers():
            assert snapshot.interner_table[peer] == plane._interner.key(peer)
        assert snapshot.next_compact_index == plane._interner._next_index

    def test_snapshot_is_picklable_plain_data(self):
        plane = build_plane(2, 2, True, True, 3)
        for i in range(8):
            apply_op(plane, ("arrive", i, i % 2, (i % 3, 0, i % 4)))
        snapshot = DiscoverySnapshot.build(plane, generation=3)
        clone = pickle.loads(pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL))
        assert clone == snapshot
        assert clone.generation == 3
        for peer in plane.peers():
            assert clone.closest_peers(peer) == plane.closest_peers(peer)


def _shape(rng) -> Tuple[int, int, int]:
    return (rng.randrange(3), rng.randrange(3), rng.randrange(4))


class TestPublisher:
    def test_publish_bumps_generation_and_swaps_atomically(self):
        plane = build_plane(None, 1, False, True, 3)
        publisher = SnapshotPublisher(plane)
        assert publisher.generation == 1
        first = publisher.snapshot
        publisher.register_peer(make_path("p0", 0, (0, 0, 0)))
        second = publisher.publish()
        assert publisher.generation == 2
        assert publisher.snapshot is second
        assert not first.has_peer("p0") and second.has_peer("p0")

    def test_publish_every_batches_mutations(self):
        plane = build_plane(None, 1, False, True, 3)
        publisher = SnapshotPublisher(plane, publish_every=3)
        reader = SnapshotReader(publisher)
        for i in range(2):
            publisher.register_peer(make_path(f"p{i}", 0, (i, 0, 0)))
        assert reader.generation == 1  # buffered: not published yet
        assert publisher.pending_mutations == 2
        publisher.register_peer(make_path("p2", 0, (2, 0, 0)))  # third: publishes
        assert reader.generation == 2
        assert publisher.pending_mutations == 0
        assert reader.pin().has_peer("p2")
        # A batch counts every path; one big batch crosses the threshold.
        publisher.register_peers([make_path(f"q{i}", 0, (i, 1, 0)) for i in range(4)])
        assert reader.generation == 3

    def test_no_op_epochs_compare_equal(self):
        plane = build_plane(None, 2, True, True, 3)
        for i in range(5):
            apply_op(plane, ("arrive", i, i % 2, (i, 0, 0)))
        publisher = SnapshotPublisher(plane)
        before = publisher.snapshot
        after = publisher.publish()
        assert after.generation == before.generation + 1
        assert after == before  # content-equal despite the new stamp
        publisher.register_peer(make_path("px", 0, (1, 1, 1)))
        assert publisher.publish() != before

    def test_reader_pin_is_stable_across_publishes(self):
        plane = build_plane(None, 1, False, True, 3)
        publisher = SnapshotPublisher(plane)
        reader = SnapshotReader(publisher)
        publisher.register_peer(make_path("p0", 0, (0, 0, 0)))
        publisher.publish()
        pinned = reader.pin()
        peers_at_pin = pinned.peers()
        for i in range(1, 6):
            publisher.register_peer(make_path(f"p{i}", 0, (i % 3, 0, 0)))
            publisher.publish()
        assert pinned.peers() == peers_at_pin  # immutable: untouched by epochs
        assert reader.pin().peer_count == 6

    def test_reader_over_fixed_snapshot(self):
        plane = build_plane(None, 1, False, True, 3)
        apply_op(plane, ("arrive", 0, 0, (0, 0, 0)))
        snapshot = DiscoverySnapshot.build(plane, generation=9)
        reader = SnapshotReader(snapshot)
        assert reader.generation == 9
        assert reader.closest_peers("p0") == plane.closest_peers("p0")
        assert reader.queries_served == 1


class TestMidEpochConsistency:
    """Readers racing the publisher see exactly one generation per query.

    The writer publishes a deterministic epoch sequence: epoch ``e``
    registers peer ``e<e>`` and restamps the lm0–lm1 distance to ``10 + e``,
    so generation ``g`` implies exactly the peers of epochs ``1..g-1`` and
    distance ``10 + (g - 1)``.  Reader threads spin concurrently, pin a
    snapshot per query, and record what they saw; every sample must match
    the reference replay of its generation — a torn read (new peer visible
    with the old distance, or vice versa) matches no generation and fails.
    """

    EPOCHS = 30

    def _expected(self, generation: int) -> Tuple[List[str], float]:
        epoch = generation - 1
        return ([f"e{i}" for i in range(1, epoch + 1)], 10.0 + epoch)

    @pytest.mark.parametrize("shard_count", [None, 1, 2, 4, 8])
    def test_concurrent_readers_see_single_generations(self, shard_count):
        plane = build_plane(shard_count, 2, True, True, 3)
        plane.set_landmark_distance("lm0", "lm1", 10.0)
        publisher = SnapshotPublisher(plane)
        stop = threading.Event()
        samples: List[List[Tuple[int, Tuple[str, ...], float]]] = [[] for _ in range(3)]
        errors: List[BaseException] = []

        def read_loop(slot: int) -> None:
            reader = SnapshotReader(publisher)
            try:
                while not stop.is_set():
                    snapshot = reader.pin()
                    peers = tuple(p for p in snapshot.peers() if str(p).startswith("e"))
                    distance = snapshot.landmark_distance("lm0", "lm1")
                    # Same pin: peers + distance + generation in one record.
                    samples[slot].append((snapshot.generation, peers, distance))
                    if peers:
                        snapshot.closest_peers(peers[-1])  # must not raise mid-epoch
            except BaseException as error:  # noqa: BLE001 - fail the test, not the thread
                errors.append(error)

        threads = [threading.Thread(target=read_loop, args=(i,)) for i in range(3)]
        for thread in threads:
            thread.start()
        try:
            for epoch in range(1, self.EPOCHS + 1):
                publisher.register_peer(make_path(f"e{epoch}", epoch % 2, (epoch % 3, 0, 0)))
                publisher.set_landmark_distance("lm0", "lm1", 10.0 + epoch)
                publisher.publish()
                time.sleep(0.001)  # give readers a scheduling window per epoch
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            plane.close()
        assert not errors, errors

        observed_generations = set()
        for reader_samples in samples:
            for generation, peers, distance in reader_samples:
                expected_peers, expected_distance = self._expected(generation)
                assert list(peers) == expected_peers, generation
                assert distance == expected_distance, generation
                observed_generations.add(generation)
        # The race must actually have happened: readers observed several
        # distinct epochs, not just the final state.
        assert len(observed_generations) >= 3
        assert max(observed_generations) <= self.EPOCHS + 1

    def test_published_epochs_match_reference_replay(self):
        """Every retained epoch is byte-identical to a fresh replay of it."""
        plane = build_plane(2, 2, True, True, 3)
        plane.set_landmark_distance("lm0", "lm1", 10.0)
        publisher = SnapshotPublisher(plane)
        retained: Dict[int, DiscoverySnapshot] = {publisher.generation: publisher.snapshot}
        for epoch in range(1, 9):
            publisher.register_peer(make_path(f"e{epoch}", epoch % 2, (epoch % 3, 0, 0)))
            publisher.set_landmark_distance("lm0", "lm1", 10.0 + epoch)
            published = publisher.publish()
            retained[published.generation] = published
        plane.close()

        reference = build_plane(None, 2, True, True, 3)
        reference.set_landmark_distance("lm0", "lm1", 10.0)
        for generation in sorted(retained):
            epoch = generation - 1
            if epoch > 0:
                reference.register_peer(make_path(f"e{epoch}", epoch % 2, (epoch % 3, 0, 0)))
                reference.set_landmark_distance("lm0", "lm1", 10.0 + epoch)
            snapshot = retained[generation]
            for peer in reference.peers():
                assert snapshot.closest_peers(peer) == reference.closest_peers(peer)
                assert snapshot.neighbor_list(peer) == reference.neighbor_list(peer)
