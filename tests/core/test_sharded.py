"""Unit tests for the sharded management plane (ring, router, coordinator)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core import ConsistentHashRing, ManagementServer, ShardBackend, ShardedManagementServer
from repro.core.path import RouterPath
from repro.exceptions import LandmarkError, RegistrationError, UnknownPeerError


def path(peer, routers, landmark):
    return RouterPath.from_routers(peer, landmark, routers)


def simple_path(peer, landmark, access="a1"):
    return path(peer, [f"{landmark}-{access}", f"{landmark}-core", landmark], landmark)


class TestConsistentHashRing:
    def test_single_node_owns_everything(self):
        ring = ConsistentHashRing(1)
        assert {ring.node_for(f"lm{i}") for i in range(50)} == {0}

    def test_deterministic_across_instances(self):
        a, b = ConsistentHashRing(4), ConsistentHashRing(4)
        for i in range(100):
            assert a.node_for(f"lm{i}") == b.node_for(f"lm{i}")

    def test_keys_spread_over_all_nodes(self):
        ring = ConsistentHashRing(4)
        counts = Counter(ring.node_for(f"landmark-{i}") for i in range(400))
        assert set(counts) == {0, 1, 2, 3}
        assert min(counts.values()) > 30  # near-uniform, not degenerate

    def test_growth_moves_a_minority_of_keys(self):
        """Consistent hashing: growing n -> n+1 relocates ~1/(n+1) of keys."""
        before = ConsistentHashRing(4)
        after = ConsistentHashRing(5)
        keys = [f"landmark-{i}" for i in range(500)]
        moved = sum(1 for key in keys if before.node_for(key) != after.node_for(key))
        # A plain modulo hash would move ~80%; consistent hashing ~20%.
        assert moved < len(keys) // 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(Exception):
            ConsistentHashRing(0)
        with pytest.raises(Exception):
            ConsistentHashRing(2, replicas=0)


class TestShardRouting:
    def test_management_server_satisfies_shard_backend(self):
        assert isinstance(ManagementServer(), ShardBackend)

    def test_landmarks_partition_across_shards(self):
        server = ShardedManagementServer(shard_count=4, neighbor_set_size=3)
        for index in range(16):
            server.register_landmark(f"lm{index}", f"r{index}")
        owners = [server.shard_of(f"lm{index}") for index in range(16)]
        assert len(set(owners)) > 1
        for index, owner in enumerate(owners):
            # The landmark's tree lives on (exactly) its owning shard.
            assert server.shards[owner].tree(f"lm{index}") is server.tree(f"lm{index}")
            assert f"lm{index}" in server.shard_landmarks(owner)

    def test_peers_live_on_their_landmark_shard(self):
        server = ShardedManagementServer(shard_count=3, neighbor_set_size=2)
        for index in range(6):
            server.register_landmark(f"lm{index}", f"lm{index}")
        for index in range(6):
            server.register_peer(simple_path(f"p{index}", f"lm{index}"))
        for index in range(6):
            assert server.peer_shard(f"p{index}") == server.shard_of(f"lm{index}")

    def test_duplicate_landmark_rejected(self):
        server = ShardedManagementServer(shard_count=2)
        server.register_landmark("lmA", "r1")
        with pytest.raises(LandmarkError):
            server.register_landmark("lmA", "r2")

    def test_unknown_landmark_and_peer_errors(self):
        server = ShardedManagementServer(shard_count=2)
        with pytest.raises(LandmarkError):
            server.tree("nope")
        with pytest.raises(LandmarkError):
            server.landmark_router("nope")
        with pytest.raises(LandmarkError):
            server.shard_of("nope")
        with pytest.raises(UnknownPeerError):
            server.unregister_peer("ghost")
        with pytest.raises(UnknownPeerError):
            server.closest_peers("ghost")
        with pytest.raises(RegistrationError):
            server.register_peer(simple_path("p0", "nope"))

    def test_shard_count_one_behaves_like_plain_routing(self):
        server = ShardedManagementServer(shard_count=1, neighbor_set_size=2)
        server.register_landmark("lmA", "lmA")
        server.register_peer(simple_path("p0", "lmA"))
        server.register_peer(simple_path("p1", "lmA"))
        assert server.shard_of("lmA") == 0
        assert server.closest_peers("p0") == [("p1", 2.0)]


class TestCoordinatorSemantics:
    def make(self, shard_count=2, k=3, cache=True):
        distances = {("lmA", "lmB"): 4.0, ("lmA", "lmC"): 6.0, ("lmB", "lmC"): 5.0}
        server = ShardedManagementServer(
            shard_count, neighbor_set_size=k, maintain_cache=cache, landmark_distances=distances
        )
        for landmark in ("lmA", "lmB", "lmC"):
            server.register_landmark(landmark, landmark)
        return server

    def test_batch_members_see_each_other_across_landmarks(self):
        server = self.make()
        results = server.register_peers(
            [
                simple_path("p1", "lmA"),
                simple_path("p2", "lmB"),
                simple_path("p3", "lmB"),
            ]
        )
        # p1 is alone under lmA: its list is filled over the inter-shard
        # protocol with detour estimates through the lmA-lmB distance.
        assert [peer for peer, _ in results["p1"]] == ["p2", "p3"]
        assert all(distance == 3 + 4.0 + 3 for _, distance in results["p1"])

    def test_batch_duplicate_keeps_last_path_and_moves_to_end(self):
        server = self.make()
        server.register_peers(
            [
                simple_path("p1", "lmA"),
                simple_path("p2", "lmB"),
                simple_path("p1", "lmC"),
            ]
        )
        assert server.peer_landmark("p1") == "lmC"
        # The single server removes + reinserts, moving p1 to the end.
        assert server.peers() == ["p2", "p1"]

    def test_reregistration_can_move_a_peer_across_shards(self):
        server = self.make(shard_count=3)
        server.register_peer(simple_path("p1", "lmA"))
        before = server.peer_shard("p1")
        server.register_peer(simple_path("p1", "lmB"))
        assert server.peer_landmark("p1") == "lmB"
        assert server.peer_shard("p1") == server.shard_of("lmB")
        if server.shard_of("lmA") != server.shard_of("lmB"):
            assert before != server.peer_shard("p1")
        assert not server.shards[server.shard_of("lmA")].tree("lmA").has_peer("p1")

    def test_failed_batch_mutates_nothing(self):
        server = self.make()
        with pytest.raises(RegistrationError):
            server.register_peers(
                [simple_path("p1", "lmA"), simple_path("bad", "unknown-lm")]
            )
        assert server.peer_count == 0
        assert server._neighbor_cache == {}

    def test_maintain_cache_false_keeps_coordinator_cache_empty(self):
        server = self.make(cache=False)
        server.register_peers([simple_path(f"p{i}", "lmA", access=f"a{i}") for i in range(5)])
        server.closest_peers("p0")
        assert server._neighbor_cache == {}
        assert server._referenced_by == {}

    def test_shards_never_maintain_their_own_cache(self):
        server = self.make()
        server.register_peers([simple_path(f"p{i}", "lmB", access=f"a{i}") for i in range(5)])
        assert server._neighbor_cache  # coordinator owns the lists...
        for shard in server.shards:
            assert shard._neighbor_cache == {}  # ...shards own only trees

    def test_estimate_distance_within_and_across_shards(self):
        server = self.make()
        server.register_peers(
            [simple_path("p1", "lmA"), simple_path("p2", "lmA", access="a2"), simple_path("p3", "lmB")]
        )
        assert server.estimate_distance("p1", "p1") == 0.0
        # Different access routers under lmA-core: 2 hops up + 2 hops down.
        assert server.estimate_distance("p1", "p2") == 4.0
        assert server.estimate_distance("p1", "p3") == 3 + 4.0 + 3

    def test_repr_mentions_shards(self):
        server = self.make()
        assert "shards=2" in repr(server)
