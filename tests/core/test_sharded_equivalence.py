"""Equivalence oracle: every sharded plane is byte-identical to one server.

The sharding refactor is only safe because of this harness: for randomized
interleavings of arrivals (single and batch), departures and queries — over
1–8 shards, with and without inter-landmark distances, with and without the
neighbour cache — a :class:`ShardedManagementServer` must return *exactly*
what a single :class:`ManagementServer` returns for the same operation
sequence: same peers, same distances, same order, same errors.  Internal
state that determines future answers (registration order, cached lists) is
audited too.

The harness is **backend-parametrized**: the same state machine runs once
per :class:`~repro.core.sharded.ShardBackend` implementation — ``inline``
(in-process shards), ``process`` (one worker per shard behind
:class:`~repro.core.remote.ProcessShardBackend`), ``socket``
(connection-scoped shards on a loopback asyncio server behind
:class:`~repro.core.socket_backend.SocketShardBackend`), ``chaos``
(process shards wrapped in a scripted-crash
:class:`~repro.core.chaos.ChaosShardBackend` with a
:class:`~repro.core.remote.RecoveryPolicy`, so every example self-heals
through worker kills via restart+replay) and ``socket-chaos`` (socket
shards on a network-shaped fault plan: crashes plus connection resets,
partial frames and stale-epoch reconnects, healed by
reconnect-with-replay) — via the ``backend_factory`` fixture, so the wire
protocol, the typed codec, the chunked fill streams AND both transports'
recovery paths are held to the very same byte-identical bar as the
original sharding refactor.

Run with ``HYPOTHESIS_PROFILE=ci-equivalence`` for the high-budget inline
CI sweep, ``HYPOTHESIS_PROFILE=ci-equivalence-process`` /
``ci-equivalence-socket`` for the reduced-budget transport sweeps, and
``HYPOTHESIS_PROFILE=ci-equivalence-chaos`` for the smallest-budget
fault-injected sweeps (the transport entries also carry a hard wall-clock
timeout); see ``tests/conftest.py``.
"""

from __future__ import annotations

import itertools
import random
from typing import List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ManagementServer, ShardedManagementServer
from repro.core.chaos import ChaosShardBackend, Fault, FaultPlan
from repro.core.path import RouterPath
from repro.core.remote import (
    BACKENDS,
    ProcessShardBackend,
    RecoveryPolicy,
    shard_factory_for,
)
from repro.core.socket_backend import SocketShardBackend

MAX_PEERS = 24
MAX_LANDMARKS = 5

# The scripted fault plan every chaos shard runs: an early crash (hits any
# shard that owns a landmark and then sees traffic — the landmark
# registration itself is op 1), a mid-workload crash-after (the op is
# acknowledged and journaled, then the worker dies: the crash-between-ops
# case), and a late crash deep in the churn so long examples re-kill a shard
# that has already recovered once.  Crash faults only: ``drop_reply``
# deliberately diverges the journal from the caller's view, so it is covered
# by dedicated tests in ``test_chaos.py`` instead of the byte-identity
# oracle.
CHAOS_FAULTS = (
    Fault(at_op=2, kind="crash_before"),
    Fault(at_op=15, kind="crash_after"),
    Fault(at_op=60, kind="crash_before"),
)

# The socket transport's plan adds the network-shaped kinds on top of an
# early crash: a connection reset mid-churn, a truncated frame, and a
# reconnect that first lands on a stale server epoch (one typed rejection,
# then success — needs max_restarts >= 2).  All four converge
# byte-identically under recovery, so they are safe for the byte-identity
# oracle; ``drop_reply`` stays out for the same reason as above.
SOCKET_CHAOS_FAULTS = (
    Fault(at_op=2, kind="crash_before"),
    Fault(at_op=15, kind="conn_reset"),
    Fault(at_op=40, kind="partial_frame"),
    Fault(at_op=60, kind="reconnect_stale_epoch"),
)


def chaos_shard_factory(k: int, transport: str = "process"):
    """A ``shard_factory``: remote shards on a scripted fault plan.

    ``transport`` picks the shard flavour (process workers on the crash
    plan, socket connections on the network-shaped plan).  Recovery is
    fully deterministic — zero backoff, no sleeping, a per-shard seeded
    RNG — so a failing example shrinks and replays identically.
    """
    indexes = itertools.count()
    faults = SOCKET_CHAOS_FAULTS if transport == "socket" else CHAOS_FAULTS

    def factory() -> ChaosShardBackend:
        index = next(indexes)
        recovery = RecoveryPolicy(
            max_restarts=3,
            backoff_base_s=0.0,
            rng=random.Random(index),
            sleep=lambda _delay: None,
        )
        if transport == "socket":
            inner = SocketShardBackend(
                neighbor_set_size=k,
                name=f"chaos-shard-{index}",
                recovery=recovery,
                compact_watermark=8,
            )
        else:
            inner = ProcessShardBackend(
                neighbor_set_size=k,
                name=f"chaos-shard-{index}",
                recovery=recovery,
                compact_watermark=8,
            )
        return ChaosShardBackend(inner, FaultPlan(faults))

    return factory


def make_backend_factory(backend: str):
    """A ``backend_factory``: builds one sharded plane for ``backend``.

    The returned callable is stateless (each call spawns fresh shards —
    fresh worker processes / connections for the remote and chaos
    backends), so it is safe to share across hypothesis examples.
    """

    def factory(shard_count, k, maintain_cache, distances) -> ShardedManagementServer:
        if backend in ("chaos", "socket-chaos"):
            # degraded_reads off: the oracle demands byte-identity, so a
            # failure that recovery cannot heal must fail loud, never be
            # papered over by a best-effort degraded answer.
            transport = "socket" if backend == "socket-chaos" else "process"
            return ShardedManagementServer(
                shard_count,
                neighbor_set_size=k,
                maintain_cache=maintain_cache,
                landmark_distances=distances,
                shard_factory=chaos_shard_factory(k, transport=transport),
                degraded_reads=False,
            )
        return ShardedManagementServer(
            shard_count,
            neighbor_set_size=k,
            maintain_cache=maintain_cache,
            landmark_distances=distances,
            shard_factory=shard_factory_for(backend, k),
        )

    return factory


@pytest.fixture(scope="module", params=(*BACKENDS, "chaos", "socket-chaos"))
def backend_factory(request):
    """One sharded-plane factory per ShardBackend implementation."""
    return make_backend_factory(request.param)


def landmark_name(index: int) -> str:
    return f"lm{index}"


def make_path(peer_id: str, landmark_index: int, shape: Tuple[int, int, int]) -> RouterPath:
    """A synthetic 5-router path under one landmark's disjoint hierarchy."""
    landmark = landmark_name(landmark_index)
    region, pop, access = shape
    routers = [
        f"{landmark}-acc-{region}-{pop}-{access}",
        f"{landmark}-pop-{region}-{pop}",
        f"{landmark}-reg-{region}",
        f"{landmark}-core",
        landmark,
    ]
    return RouterPath.from_routers(peer_id, landmark, routers)


def landmark_distances(landmark_count: int):
    return {
        (landmark_name(i), landmark_name(j)): float(1 + abs(i - j))
        for i in range(landmark_count)
        for j in range(landmark_count)
        if i < j
    }


def build_planes(
    backend_factory,
    landmark_count: int,
    shard_count: int,
    with_distances: bool,
    maintain_cache: bool,
    k: int,
) -> Tuple[ManagementServer, ShardedManagementServer]:
    distances = landmark_distances(landmark_count) if with_distances else None
    single = ManagementServer(
        neighbor_set_size=k, maintain_cache=maintain_cache, landmark_distances=distances
    )
    sharded = backend_factory(shard_count, k, maintain_cache, distances)
    for index in range(landmark_count):
        # The landmark's attachment router must equal the landmark-side end
        # of make_path's synthetic paths ("lm<i>"), or every arrival fails
        # root validation and the oracle only ever compares error strings.
        single.register_landmark(landmark_name(index), landmark_name(index))
        sharded.register_landmark(landmark_name(index), landmark_name(index))
    return single, sharded


def apply_op(server, op):
    """Apply one op; normalise the outcome so both planes can be compared."""
    try:
        kind = op[0]
        if kind == "arrive":
            _, peer_index, lm_index, shape = op
            return ("ok", server.register_peer(make_path(f"p{peer_index}", lm_index, shape)))
        if kind == "batch":
            _, specs = op
            paths = [
                make_path(f"p{peer_index}", lm_index, shape)
                for peer_index, lm_index, shape in specs
            ]
            return ("ok", server.register_peers(paths))
        if kind == "depart":
            _, peer_index = op
            return ("ok", server.unregister_peer(f"p{peer_index}"))
        if kind == "query":
            _, peer_index, k = op
            return ("ok", server.closest_peers(f"p{peer_index}", k))
        raise AssertionError(f"unknown op {op!r}")
    except Exception as error:  # noqa: BLE001 - errors are part of the contract
        return ("error", type(error).__name__, str(error))


def cache_snapshot(server) -> dict:
    return {
        owner: [(entry.peer_id, entry.distance) for entry in entries]
        for owner, entries in server._neighbor_cache.items()
    }


def audit_equal(single: ManagementServer, sharded: ShardedManagementServer) -> None:
    """Full-state audit: everything that shapes future answers must match."""
    assert sharded.peers() == single.peers()
    assert sharded.landmarks() == single.landmarks()
    assert sharded.peer_count == single.peer_count
    assert cache_snapshot(sharded) == cache_snapshot(single)
    assert sharded._referenced_by == single._referenced_by
    for peer in single.peers():
        assert sharded.peer_landmark(peer) == single.peer_landmark(peer)
        assert sharded.peer_path(peer) == single.peer_path(peer)
        for k in (1, single.neighbor_set_size, single.neighbor_set_size + 2):
            assert sharded.closest_peers(peer, k) == single.closest_peers(peer, k)
    for peer_a in single.peers()[:10]:
        for peer_b in single.peers()[:10]:
            assert apply_pair(single, peer_a, peer_b) == apply_pair(sharded, peer_a, peer_b)


def apply_pair(server, peer_a, peer_b):
    try:
        return ("ok", server.estimate_distance(peer_a, peer_b))
    except Exception as error:  # noqa: BLE001
        return ("error", type(error).__name__, str(error))


def run_case(backend_factory, case) -> None:
    """One oracle example: interleave the ops on both planes, then audit."""
    landmark_count, shard_count, with_distances, maintain_cache, k, ops = case
    single, sharded = build_planes(
        backend_factory, landmark_count, shard_count, with_distances, maintain_cache, k
    )
    try:
        for op in ops:
            assert apply_op(sharded, op) == apply_op(single, op), op
        audit_equal(single, sharded)
    finally:
        sharded.close()


@st.composite
def equivalence_cases(draw):
    landmark_count = draw(st.integers(1, MAX_LANDMARKS))
    shard_count = draw(st.integers(1, 8))
    with_distances = draw(st.booleans())
    maintain_cache = draw(st.booleans())
    k = draw(st.integers(1, 4))
    shape = st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 3))
    peer = st.integers(0, MAX_PEERS - 1)
    # landmark index == landmark_count exercises the unknown-landmark error —
    # in batches too, so the per-shard batched validation must surface the
    # same first-invalid-path-in-input-order error as the single server.
    any_lm = st.integers(0, landmark_count)
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("arrive"), peer, any_lm, shape),
                st.tuples(
                    st.just("batch"),
                    st.lists(st.tuples(peer, any_lm, shape), min_size=1, max_size=6),
                ),
                st.tuples(st.just("depart"), peer),
                st.tuples(st.just("query"), peer, st.sampled_from([None, 1, 2, 3, 7])),
            ),
            min_size=1,
            max_size=40,
        )
    )
    return landmark_count, shard_count, with_distances, maintain_cache, k, ops


class TestEquivalenceOracle:
    # max_examples is deliberately not pinned: the default profile's budget
    # applies locally, and CI's dedicated matrix entries (tests/conftest.py)
    # select ci-equivalence (inline, high budget) or ci-equivalence-process
    # (process, reduced budget + hard timeout) instead.
    @settings(deadline=None)
    @given(case=equivalence_cases())
    def test_sharded_plane_matches_single_server(self, backend_factory, case):
        run_case(backend_factory, case)


class TestEquivalenceAcceptance:
    """The issue's acceptance sweep: a long fixed workload at 1/2/4/8 shards."""

    @pytest.mark.parametrize("shard_count", [1, 2, 4, 8])
    @pytest.mark.parametrize("with_distances", [True, False])
    def test_long_interleaved_workload(self, backend_factory, shard_count, with_distances):
        single, sharded = build_planes(
            backend_factory,
            landmark_count=4,
            shard_count=shard_count,
            with_distances=with_distances,
            maintain_cache=True,
            k=3,
        )
        try:
            rng = random.Random(20_000 + shard_count)
            alive: List[str] = []
            for step in range(400):
                action = rng.random()
                if action < 0.40 or len(alive) < 3:
                    op = ("arrive", rng.randrange(MAX_PEERS), rng.randrange(4), _shape(rng))
                elif action < 0.55:
                    op = (
                        "batch",
                        [
                            (rng.randrange(MAX_PEERS), rng.randrange(4), _shape(rng))
                            for _ in range(rng.randrange(1, 5))
                        ],
                    )
                elif action < 0.75:
                    op = ("depart", rng.randrange(MAX_PEERS))
                else:
                    op = ("query", rng.randrange(MAX_PEERS), rng.choice([None, 1, 3, 6]))
                assert apply_op(sharded, op) == apply_op(single, op), (step, op)
                alive = single.peers()
            audit_equal(single, sharded)
            if shard_count > 1 and len(sharded.landmarks()) > 1:
                used = {sharded.shard_of(landmark) for landmark in sharded.landmarks()}
                # The fixed landmark names spread over >1 shard at these counts,
                # so the sweep genuinely crosses shard boundaries.
                assert len(used) > 1
        finally:
            sharded.close()


def _shape(rng: random.Random) -> Tuple[int, int, int]:
    return (rng.randrange(3), rng.randrange(3), rng.randrange(4))


class TestChaosAcceptance:
    """The issue's chaos sweep: every traffic-bearing shard dies and recovers.

    A scripted :class:`FaultPlan` kills each shard's worker during a long
    churn workload (1/2/4/8 shards, on both remote transports — process
    workers and socket connections, the latter additionally through
    connection resets, partial frames and a stale-epoch reconnect); the
    plane must auto-recover via restart/reconnect+replay and stay
    byte-identical to the single server throughout — and the test proves
    the faults really happened (``plan.fired``, worker epoch advanced)
    rather than vacuously passing on an idle plan.
    """

    @pytest.mark.parametrize("transport", ["process", "socket"])
    @pytest.mark.parametrize("shard_count", [1, 2, 4, 8])
    def test_every_busy_shard_dies_and_recovers_byte_identical(self, shard_count, transport):
        factory = make_backend_factory("socket-chaos" if transport == "socket" else "chaos")
        single, sharded = build_planes(
            factory,
            landmark_count=4,
            shard_count=shard_count,
            with_distances=True,
            maintain_cache=True,
            k=3,
        )
        try:
            rng = random.Random(31_000 + shard_count)
            for step in range(220):
                action = rng.random()
                if action < 0.45:
                    op = ("arrive", rng.randrange(MAX_PEERS), rng.randrange(4), _shape(rng))
                elif action < 0.60:
                    op = (
                        "batch",
                        [
                            (rng.randrange(MAX_PEERS), rng.randrange(4), _shape(rng))
                            for _ in range(rng.randrange(1, 5))
                        ],
                    )
                elif action < 0.80:
                    op = ("depart", rng.randrange(MAX_PEERS))
                else:
                    op = ("query", rng.randrange(MAX_PEERS), rng.choice([None, 1, 3, 6]))
                assert apply_op(sharded, op) == apply_op(single, op), (step, op)
            audit_equal(single, sharded)
            # Every shard that owns a landmark took the landmark registration
            # as op 1 and plenty of churn after it, so its at_op=2 crash must
            # have fired and its worker must have been respawned at least
            # once (epoch counts spawns; 1 = never restarted).
            killed = 0
            for shard in sharded._shards:
                if shard.plan.ops_seen >= 2:
                    assert shard.plan.fired, f"{shard.name} saw traffic but never crashed"
                    assert shard.supervisor.epoch > 1, (
                        f"{shard.name} crashed but was never respawned"
                    )
                    killed += 1
            assert killed >= 1, "no shard ever received enough traffic to be killed"
            if shard_count >= 2:
                # With 4 landmarks over >=2 shards the consistent-hash ring
                # spreads ownership, so more than one worker died on duty.
                used = {sharded.shard_of(lm) for lm in sharded.landmarks()}
                assert killed >= min(len(used), 2)
            if transport == "socket" and shard_count == 1:
                # All 220+ ops hit the lone shard, so every scripted network
                # fault kind must actually have fired — the sweep is not
                # allowed to pass without exercising resets, truncated
                # frames and the stale-epoch reconnect.
                kinds = {kind for _count, kind, _op in sharded._shards[0].plan.fired}
                assert {"conn_reset", "partial_frame", "reconnect_stale_epoch"} <= kinds
        finally:
            sharded.close()
