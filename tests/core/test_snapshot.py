"""Snapshot/restore: a restored server is answer-identical to the original.

The snapshot contract backs journal compaction: ``ShardSupervisor.compact``
replaces a long replay journal with one ``restore_state`` entry, which is
only sound if restoring a snapshot yields byte-identical answers — same
peers, same distances, same order, same cache contents — for every
subsequent operation.  Malformed or future-versioned snapshots must fail
typed (:class:`~repro.exceptions.StateSnapshotError`), never half-restore.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import ManagementServer, NeighborCache, PeerKeyInterner, ServerStats
from repro.core.management_server import STATE_SNAPSHOT_VERSION
from repro.core.path import RouterPath
from repro.exceptions import StateSnapshotError


def simple_path(peer, landmark, access="a1"):
    return RouterPath.from_routers(
        peer, landmark, [f"{landmark}-{access}", f"{landmark}-core", landmark]
    )


def churned_server(maintain_cache=True):
    """A server whose history is much longer than its live state."""
    server = ManagementServer(
        neighbor_set_size=3,
        maintain_cache=maintain_cache,
        landmark_distances={("lmA", "lmB"): 4.0},
    )
    for landmark in ("lmA", "lmB"):
        server.register_landmark(landmark, landmark)
    server.register_peers(
        [simple_path(f"p{i}", "lmA" if i % 2 else "lmB", access=f"a{i % 3}") for i in range(6)]
    )
    for _ in range(3):  # churn so registration order != peer-name order
        server.unregister_peer("p1")
        server.register_peer(simple_path("p1", "lmA", access="a2"))
    for peer in server.peers():  # warm the cache (when maintained)
        server.closest_peers(peer)
    return server


def assert_answer_identical(restored, original):
    assert restored.peers() == original.peers()
    assert restored.landmarks() == original.landmarks()
    for peer in original.peers():
        assert restored.peer_path(peer) == original.peer_path(peer)
        for k in (1, 3, 7):
            assert restored.closest_peers(peer, k) == original.closest_peers(peer, k)
    for peer_a in original.peers():
        for peer_b in original.peers():
            assert restored.estimate_distance(peer_a, peer_b) == original.estimate_distance(
                peer_a, peer_b
            )


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("maintain_cache", [True, False])
    def test_restored_server_is_answer_identical(self, maintain_cache):
        original = churned_server(maintain_cache=maintain_cache)
        restored = ManagementServer(
            neighbor_set_size=3,
            maintain_cache=maintain_cache,
            landmark_distances=None,  # the snapshot carries the distances
        )
        restored.restore_state(original.snapshot_state())
        assert_answer_identical(restored, original)

    def test_cache_contents_travel_with_the_snapshot(self):
        original = churned_server(maintain_cache=True)
        restored = ManagementServer(neighbor_set_size=3, maintain_cache=True)
        restored.restore_state(original.snapshot_state())
        original_cache = {
            owner: [(entry.peer_id, entry.distance) for entry in entries]
            for owner, entries in original._neighbor_cache.items()
        }
        restored_cache = {
            owner: [(entry.peer_id, entry.distance) for entry in entries]
            for owner, entries in restored._neighbor_cache.items()
        }
        assert restored_cache == original_cache
        assert restored._referenced_by == original._referenced_by

    def test_restore_replaces_any_previous_state(self):
        original = churned_server()
        other = ManagementServer(neighbor_set_size=3)
        other.register_landmark("lmZ", "lmZ")
        other.register_peer(simple_path("stale", "lmZ"))
        other.restore_state(original.snapshot_state())
        assert "stale" not in other.peers()
        assert "lmZ" not in other.landmarks()
        assert_answer_identical(other, original)

    def test_snapshot_is_plain_picklable_data(self):
        snapshot = churned_server().snapshot_state()
        clone = pickle.loads(pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL))
        assert clone == snapshot

    def test_restored_server_keeps_serving_mutations(self):
        original = churned_server()
        restored = ManagementServer(neighbor_set_size=3)
        restored.restore_state(original.snapshot_state())
        newcomer = simple_path("p9", "lmA", access="a0")
        restored.register_peer(newcomer)
        original.register_peer(newcomer)
        assert restored.closest_peers("p9") == original.closest_peers("p9")
        restored.unregister_peer("p0")
        original.unregister_peer("p0")
        assert restored.peers() == original.peers()


class TestSnapshotValidation:
    @pytest.mark.parametrize(
        "garbage",
        [
            "not a snapshot",
            (),
            ("wrong-tag", STATE_SNAPSHOT_VERSION, (), (), (), None),
            ("repro-state", STATE_SNAPSHOT_VERSION, (), (), ()),  # wrong arity
            None,
            42,
        ],
    )
    def test_garbage_is_rejected_typed(self, garbage):
        server = ManagementServer(neighbor_set_size=3)
        with pytest.raises(StateSnapshotError):
            server.restore_state(garbage)

    def test_future_version_is_rejected_typed(self):
        server = ManagementServer(neighbor_set_size=3)
        snapshot = ("repro-state", STATE_SNAPSHOT_VERSION + 1, (), (), (), None)
        with pytest.raises(StateSnapshotError) as error:
            server.restore_state(snapshot)
        assert str(STATE_SNAPSHOT_VERSION + 1) in str(error.value)

    def test_rejected_snapshot_leaves_existing_state_alone(self):
        server = ManagementServer(neighbor_set_size=3)
        server.register_landmark("lmA", "lmA")
        server.register_peer(simple_path("p0", "lmA"))
        with pytest.raises(StateSnapshotError):
            server.restore_state(("repro-state", 999, (), (), (), None))
        assert server.peers() == ["p0"]


class TestNeighborCacheState:
    def test_export_import_round_trip(self):
        stats_a, stats_b = ServerStats(), ServerStats()
        source = NeighborCache(3, stats_a, PeerKeyInterner())
        source.store("p0", (("p1", 2.0), ("p2", 4.0)))
        source.store("p1", (("p0", 2.0),))
        source.note_membership_change()
        source.store("p2", (("p0", 4.0),), complete=True)

        target = NeighborCache(3, stats_b, PeerKeyInterner())
        target.store("doomed", (("p9", 1.0),))
        target.import_state(source.export_state())

        assert target.get("doomed") is None
        for owner in ("p0", "p1", "p2"):
            assert [(e.peer_id, e.distance) for e in target.get(owner)] == [
                (e.peer_id, e.distance) for e in source.get(owner)
            ]
        assert target.membership_generation == source.membership_generation
        assert target.is_complete("p2") == source.is_complete("p2")
        assert target.is_complete("p0") == source.is_complete("p0")
        assert target.referenced_by == source.referenced_by
