"""Snapshot/restore: a restored server is answer-identical to the original.

The snapshot contract backs journal compaction: ``ShardSupervisor.compact``
replaces a long replay journal with one ``restore_state`` entry, which is
only sound if restoring a snapshot yields byte-identical answers — same
peers, same distances, same order, same cache contents — for every
subsequent operation.  Malformed or future-versioned snapshots must fail
typed (:class:`~repro.exceptions.StateSnapshotError`), never half-restore.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import ManagementServer, NeighborCache, PeerKeyInterner, ServerStats
from repro.core.management_server import STATE_SNAPSHOT_VERSION
from repro.core.path import RouterPath
from repro.exceptions import StateSnapshotError


def simple_path(peer, landmark, access="a1"):
    return RouterPath.from_routers(
        peer, landmark, [f"{landmark}-{access}", f"{landmark}-core", landmark]
    )


def churned_server(maintain_cache=True):
    """A server whose history is much longer than its live state."""
    server = ManagementServer(
        neighbor_set_size=3,
        maintain_cache=maintain_cache,
        landmark_distances={("lmA", "lmB"): 4.0},
    )
    for landmark in ("lmA", "lmB"):
        server.register_landmark(landmark, landmark)
    server.register_peers(
        [simple_path(f"p{i}", "lmA" if i % 2 else "lmB", access=f"a{i % 3}") for i in range(6)]
    )
    for _ in range(3):  # churn so registration order != peer-name order
        server.unregister_peer("p1")
        server.register_peer(simple_path("p1", "lmA", access="a2"))
    for peer in server.peers():  # warm the cache (when maintained)
        server.closest_peers(peer)
    return server


def assert_answer_identical(restored, original):
    assert restored.peers() == original.peers()
    assert restored.landmarks() == original.landmarks()
    for peer in original.peers():
        assert restored.peer_path(peer) == original.peer_path(peer)
        for k in (1, 3, 7):
            assert restored.closest_peers(peer, k) == original.closest_peers(peer, k)
    for peer_a in original.peers():
        for peer_b in original.peers():
            assert restored.estimate_distance(peer_a, peer_b) == original.estimate_distance(
                peer_a, peer_b
            )


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("maintain_cache", [True, False])
    def test_restored_server_is_answer_identical(self, maintain_cache):
        original = churned_server(maintain_cache=maintain_cache)
        restored = ManagementServer(
            neighbor_set_size=3,
            maintain_cache=maintain_cache,
            landmark_distances=None,  # the snapshot carries the distances
        )
        restored.restore_state(original.snapshot_state())
        assert_answer_identical(restored, original)

    def test_cache_contents_travel_with_the_snapshot(self):
        original = churned_server(maintain_cache=True)
        restored = ManagementServer(neighbor_set_size=3, maintain_cache=True)
        restored.restore_state(original.snapshot_state())
        original_cache = {
            owner: [(entry.peer_id, entry.distance) for entry in entries]
            for owner, entries in original._neighbor_cache.items()
        }
        restored_cache = {
            owner: [(entry.peer_id, entry.distance) for entry in entries]
            for owner, entries in restored._neighbor_cache.items()
        }
        assert restored_cache == original_cache
        assert restored._referenced_by == original._referenced_by

    def test_restore_replaces_any_previous_state(self):
        original = churned_server()
        other = ManagementServer(neighbor_set_size=3)
        other.register_landmark("lmZ", "lmZ")
        other.register_peer(simple_path("stale", "lmZ"))
        other.restore_state(original.snapshot_state())
        assert "stale" not in other.peers()
        assert "lmZ" not in other.landmarks()
        assert_answer_identical(other, original)

    def test_snapshot_is_plain_picklable_data(self):
        snapshot = churned_server().snapshot_state()
        clone = pickle.loads(pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL))
        assert clone == snapshot

    def test_restored_server_keeps_serving_mutations(self):
        original = churned_server()
        restored = ManagementServer(neighbor_set_size=3)
        restored.restore_state(original.snapshot_state())
        newcomer = simple_path("p9", "lmA", access="a0")
        restored.register_peer(newcomer)
        original.register_peer(newcomer)
        assert restored.closest_peers("p9") == original.closest_peers("p9")
        restored.unregister_peer("p0")
        original.unregister_peer("p0")
        assert restored.peers() == original.peers()


class TestInternerStability:
    """Compact indices must survive snapshot→churn→compact→restore verbatim.

    The serving plane keys array-backed state on the interner's compact
    indices, so a restore that re-interned peers in path order — silently
    renumbering the survivors after any churn left gaps — would invalidate
    every published :class:`~repro.core.serving.DiscoverySnapshot`.  These
    tests fail on the version-1 restore path.
    """

    def test_compact_indices_survive_restore_after_churn(self):
        original = churned_server()
        # Open gaps in the index space: departures free indices that a
        # re-interning restore would densely reassign.
        original.unregister_peer("p0")
        original.unregister_peer("p3")
        original.register_peer(simple_path("p9", "lmA", access="a9"))
        before = {peer: original._interner.key(peer) for peer in original.peers()}

        restored = ManagementServer(neighbor_set_size=3)
        restored.restore_state(original.snapshot_state())
        after = {peer: restored._interner.key(peer) for peer in restored.peers()}
        assert after == before

    def test_monotonic_counter_survives_restore(self):
        original = churned_server()
        original.unregister_peer("p0")
        restored = ManagementServer(neighbor_set_size=3)
        restored.restore_state(original.snapshot_state())
        assert restored._interner._next_index == original._interner._next_index
        # A fresh arrival after restore gets the same index it would have
        # gotten on the original plane — no collision with a freed index.
        restored.register_peer(simple_path("px", "lmA", access="a5"))
        original.register_peer(simple_path("px", "lmA", access="a5"))
        assert restored._interner.key("px") == original._interner.key("px")

    def test_supervised_compact_preserves_compact_indices(self):
        """The journal-compaction path end to end: churn → compact → restart.

        ``compact`` rewrites the journal as one ``restore_state`` entry and
        ``restart`` replays it onto a fresh worker; the worker's next
        ``snapshot_state`` — interner table included — must be identical to
        the pre-compact snapshot.
        """
        from repro.core.remote import ProcessShardBackend

        shard = ProcessShardBackend(neighbor_set_size=3, name="compact-shard")
        try:
            shard.register_landmark("lmA", "lmA")
            shard.insert_paths(
                [simple_path(f"p{i}", "lmA", access=f"a{i % 3}") for i in range(6)]
            )
            for peer in ("p1", "p4"):
                shard.unregister_peer(peer)
            before = shard.supervisor.request("snapshot_state", ())
            shard.compact()
            shard.restart()
            after = shard.supervisor.request("snapshot_state", ())
            assert after == before
        finally:
            shard.close()


class TestRestoreCacheGeneration:
    """Restore must not let the path replay inflate the cache generation.

    ``restore_state`` replays every path through ``_insert_path``, which
    bumps the fresh cache's ``membership_generation`` once per peer.  Those
    transient bumps are suppressed: a cache import re-validates the
    snapshot's completeness marks, and a cache-less restore starts at
    generation 0 like a fresh server.
    """

    def test_generation_is_not_replay_inflated(self):
        original = churned_server(maintain_cache=True)
        restored = ManagementServer(neighbor_set_size=3, maintain_cache=True)
        restored.restore_state(original.snapshot_state())
        assert (
            restored._cache.membership_generation == original._cache.membership_generation
        )

    def test_cacheless_restore_starts_at_generation_zero(self):
        original = churned_server(maintain_cache=False)
        restored = ManagementServer(neighbor_set_size=3, maintain_cache=False)
        restored.restore_state(original.snapshot_state())
        assert restored._cache.membership_generation == 0

    def test_completeness_marks_honoured_on_first_query_after_restore(self):
        """A complete-but-short list must hit the cache, not recompute."""
        original = ManagementServer(neighbor_set_size=5, maintain_cache=True)
        original.register_landmark("lmA", "lmA")
        # Two peers: every list is legitimately short (1 < k) and marked
        # complete at store time.
        original.register_peers(
            [simple_path("p0", "lmA", access="a0"), simple_path("p1", "lmA", access="a1")]
        )
        assert original._cache.is_complete("p0")

        restored = ManagementServer(neighbor_set_size=5, maintain_cache=True)
        restored.restore_state(original.snapshot_state())
        assert restored._cache.is_complete("p0")
        tree_queries = restored.stats.tree_queries
        answer = restored.closest_peers("p0")
        assert answer == original.closest_peers("p0")
        assert restored.stats.tree_queries == tree_queries  # served from cache


class TestSnapshotValidation:
    @pytest.mark.parametrize(
        "garbage",
        [
            "not a snapshot",
            (),
            ("wrong-tag", STATE_SNAPSHOT_VERSION, (), (), (), None, ((), 0)),
            ("repro-state", STATE_SNAPSHOT_VERSION, (), (), (), None),  # wrong arity
            ("repro-state", STATE_SNAPSHOT_VERSION, (), (), (), None, ((), 0), ()),
            None,
            42,
        ],
    )
    def test_garbage_is_rejected_typed(self, garbage):
        server = ManagementServer(neighbor_set_size=3)
        with pytest.raises(StateSnapshotError):
            server.restore_state(garbage)

    @pytest.mark.parametrize(
        "version", [STATE_SNAPSHOT_VERSION + 1, 1]  # future AND the pre-interner layout
    )
    def test_other_versions_are_rejected_typed(self, version):
        server = ManagementServer(neighbor_set_size=3)
        snapshot = ("repro-state", version, (), (), (), None)
        with pytest.raises(StateSnapshotError) as error:
            server.restore_state(snapshot)
        assert str(version) in str(error.value)

    def test_malformed_interner_state_is_rejected_typed(self):
        server = ManagementServer(neighbor_set_size=3)
        snapshot = ("repro-state", STATE_SNAPSHOT_VERSION, (), (), (), None, "bogus")
        with pytest.raises(StateSnapshotError):
            server.restore_state(snapshot)

    def test_rejected_snapshot_leaves_existing_state_alone(self):
        server = ManagementServer(neighbor_set_size=3)
        server.register_landmark("lmA", "lmA")
        server.register_peer(simple_path("p0", "lmA"))
        with pytest.raises(StateSnapshotError):
            server.restore_state(("repro-state", 999, (), (), (), None, ((), 0)))
        assert server.peers() == ["p0"]


class TestNeighborCacheState:
    def test_export_import_round_trip(self):
        stats_a, stats_b = ServerStats(), ServerStats()
        source = NeighborCache(3, stats_a, PeerKeyInterner())
        source.store("p0", (("p1", 2.0), ("p2", 4.0)))
        source.store("p1", (("p0", 2.0),))
        source.note_membership_change()
        source.store("p2", (("p0", 4.0),), complete=True)

        target = NeighborCache(3, stats_b, PeerKeyInterner())
        target.store("doomed", (("p9", 1.0),))
        target.import_state(source.export_state())

        assert target.get("doomed") is None
        for owner in ("p0", "p1", "p2"):
            assert [(e.peer_id, e.distance) for e in target.get(owner)] == [
                (e.peer_id, e.distance) for e in source.get(owner)
            ]
        assert target.membership_generation == source.membership_generation
        assert target.is_complete("p2") == source.is_complete("p2")
        assert target.is_complete("p0") == source.is_complete("p0")
        assert target.referenced_by == source.referenced_by
