"""Tests for the socket shard backend (server, pool, faults, CLI).

Covers the asyncio :class:`ShardServer`'s connection-scoped shard protocol
(hello/generation, op-before-hello, re-hello), the
:class:`SocketShardBackend`'s parity with an inline shard, connection
pooling, the transport-shaped fault hooks (``sever`` modes, stale-epoch
reconnect) and the three network chaos acceptance cases from the issue:
a partial frame mid-``fill_candidates``, a connection reset mid-batch
insert, and a stale-epoch reconnect — each must converge byte-identically
under recovery or fail with a typed error without it, never hang and never
answer silently wrong.  Ends with the ``shard-serve`` CLI round trip.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import threading
import time

import pytest

from repro.core import ManagementServer, ShardBackend, ShardedManagementServer
from repro.core.budget import DeadlineBudget
from repro.core.path import RouterPath
from repro.core.remote import RecoveryPolicy
from repro.core.socket_backend import (
    PROTOCOL_VERSION,
    FramedConnection,
    LocalShardServer,
    SocketConnectionPool,
    SocketShardBackend,
    _dial,
    _parse_tcp,
    build_serve_parser,
    encode_frame,
    format_address,
    socket_shard_factory,
)
from repro.exceptions import ShardUnavailableError, UnknownPeerError


def simple_path(peer, landmark, access="a1"):
    return RouterPath.from_routers(
        peer, landmark, [f"{landmark}-{access}", f"{landmark}-core", landmark]
    )


def seed_peers(*shards, landmark="lmA", count=4):
    for shard in shards:
        shard.register_landmark(landmark, landmark)
        shard.insert_paths(
            [simple_path(f"p{i}", landmark, access=f"a{i % 3}") for i in range(count)]
        )


def fast_recovery(max_restarts=2):
    return RecoveryPolicy(
        max_restarts=max_restarts, backoff_base_s=0.0, sleep=lambda _delay: None
    )


@pytest.fixture()
def server():
    local = LocalShardServer().acquire()
    yield local
    local.release()


@pytest.fixture()
def backend():
    with SocketShardBackend(neighbor_set_size=3, name="socket-under-test") as shard:
        yield shard


def raw_connection(server):
    return FramedConnection(_dial(server.address, 5.0), server.address)


def exchange(conn, message, budget=None):
    budget = budget or DeadlineBudget(5.0)
    conn.send_frame(encode_frame(message), budget)
    return conn.recv_frame(budget)


class TestWireProtocol:
    """The server speaks the codec's frame protocol, one shard per hello."""

    def test_hello_returns_version_and_monotonic_generation(self, server):
        first, second = raw_connection(server), raw_connection(server)
        try:
            reply_a = exchange(first, (1, "hello", (PROTOCOL_VERSION, 3)))
            reply_b = exchange(second, (1, "hello", (PROTOCOL_VERSION, 3)))
            assert reply_a[:2] == (1, "ok") and reply_b[:2] == (1, "ok")
            (version_a, generation_a) = reply_a[2]
            (version_b, generation_b) = reply_b[2]
            assert version_a == version_b == PROTOCOL_VERSION
            assert generation_b > generation_a  # server-wide, strictly monotonic
        finally:
            first.close()
            second.close()

    def test_wrong_protocol_version_is_rejected_typed(self, server):
        conn = raw_connection(server)
        try:
            reply = exchange(conn, (1, "hello", (PROTOCOL_VERSION + 1, 3)))
            assert reply[1] == "err"
            assert reply[2] == "WireProtocolError"
        finally:
            conn.close()

    def test_operation_before_hello_is_rejected_typed(self, server):
        conn = raw_connection(server)
        try:
            reply = exchange(conn, (1, "ping", ()))
            assert reply[1] == "err"
            assert reply[2] == "WireProtocolError"
            assert "before hello" in reply[3]
        finally:
            conn.close()

    def test_re_hello_swaps_in_a_fresh_empty_shard(self, server):
        """A second hello on the SAME connection discards the old shard —
        the invariant that makes pooled-connection reuse safe."""
        conn = raw_connection(server)
        try:
            exchange(conn, (1, "hello", (PROTOCOL_VERSION, 3)))
            exchange(conn, (2, "register_landmark", ("lmA", "lmA")))
            stats = exchange(conn, (3, "stats", ()))
            assert stats[1] == "ok"
            exchange(conn, (4, "hello", (PROTOCOL_VERSION, 3)))
            reply = exchange(conn, (5, "tree", ("lmA",)))
            assert reply[1] == "err"  # the landmark died with the old shard
        finally:
            conn.close()

    def test_truncated_frame_drops_the_connection(self, server):
        conn = raw_connection(server)
        try:
            exchange(conn, (1, "hello", (PROTOCOL_VERSION, 3)))
            conn.send_partial_frame()  # header declares more bytes than follow
            with pytest.raises((OSError, EOFError)):
                conn.recv_frame(DeadlineBudget(5.0))
        finally:
            conn.close()


class TestBackendParity:
    """The socket shard answers byte-identically to an inline shard."""

    def test_satisfies_shard_backend_protocol(self, backend):
        assert isinstance(backend, ShardBackend)

    def test_local_closest_and_fill_match_inline(self, backend):
        inline = ManagementServer(neighbor_set_size=3, maintain_cache=False)
        seed_peers(backend, inline)
        for peer in ("p0", "p1", "p2", "p3"):
            for k in (1, 2, 5):
                assert backend.local_closest(peer, k) == inline.local_closest(peer, k)
        bases = {"lmA": 7.0}
        assert list(backend.fill_candidates(bases, exclude_peer="p0")) == list(
            inline.fill_candidates(bases, exclude_peer="p0")
        )

    def test_rebuilt_errors_are_real_exception_types(self, backend):
        backend.register_landmark("lmA", "lmA")
        with pytest.raises(UnknownPeerError):
            backend.unregister_peer("ghost")

    def test_sharded_plane_runs_on_the_socket_factory(self):
        with ShardedManagementServer(
            2, neighbor_set_size=3, shard_factory=socket_shard_factory(3)
        ) as plane:
            plane.register_landmark("lmA", "lmA")
            plane.register_peers(
                [simple_path(f"p{i}", "lmA", access=f"a{i}") for i in range(4)]
            )
            reference = ManagementServer(neighbor_set_size=3)
            reference.register_landmark("lmA", "lmA")
            for i in range(4):
                reference.register_peer(simple_path(f"p{i}", "lmA", access=f"a{i}"))
            for peer in plane.peers():
                assert plane.closest_peers(peer) == reference.closest_peers(peer)


class TestConnectionPool:
    def test_reconnect_reuses_a_pooled_warm_socket(self, server):
        pool = SocketConnectionPool(server.address)
        with SocketShardBackend(
            address=server.address, neighbor_set_size=3, pool=pool
        ) as shard:
            seed_peers(shard)
            before = shard.local_closest("p0", 3)
            shard.restart()  # clean restart releases the old conn to the pool
            assert shard.local_closest("p0", 3) == before
            assert pool.reuses >= 1
        pool.close()

    def test_closed_idle_connections_are_skipped_not_handed_out(self, server):
        pool = SocketConnectionPool(server.address)
        conn = pool.acquire(DeadlineBudget(5.0))
        pool.release(conn)
        conn.close()  # rot the idle connection behind the pool's back
        fresh = pool.acquire(DeadlineBudget(5.0))
        try:
            assert not fresh.closed
            assert pool.dials == 2
        finally:
            fresh.close()
            pool.close()

    def test_poisoned_connections_never_return_to_the_pool(self, server):
        pool = SocketConnectionPool(server.address)
        with SocketShardBackend(
            address=server.address, neighbor_set_size=3, pool=pool, name="poisoned"
        ) as shard:
            seed_peers(shard)
            shard.supervisor.sever("reset")
            with pytest.raises(ShardUnavailableError):
                shard.local_closest("p0", 2)
            assert pool.idle_count == 0  # the severed conn was not pooled
            shard.restart()
            assert shard.local_closest("p0", 2)
        pool.close()


class TestLocalServerLifecycle:
    def test_factory_shares_one_refcounted_loopback_server(self):
        factory = socket_shard_factory(neighbor_set_size=3)
        shards = [factory() for _ in range(3)]
        addresses = {format_address(s.supervisor.address) for s in shards}
        assert len(addresses) == 1  # one server, three connection-scoped shards
        for shard in shards[:-1]:
            shard.close()
        last = shards[-1]
        seed_peers(last)  # survivors keep working while refs remain
        assert last.local_closest("p0", 2)
        last.close()

    def test_closing_the_last_backend_stops_server_and_unlinks_socket(self):
        threads_before = {t.name for t in threading.enumerate()}
        shard = SocketShardBackend(neighbor_set_size=3)
        address = shard.supervisor.address
        shard.close()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leftovers = {
                t.name for t in threading.enumerate()
            } - threads_before
            if not leftovers:
                break
            time.sleep(0.01)
        assert not leftovers, f"server thread leaked: {leftovers}"
        if isinstance(address, str):
            assert not os.path.exists(address)

    def test_factory_names_shards_in_spawn_order(self):
        factory = socket_shard_factory(neighbor_set_size=2)
        shards = [factory() for _ in range(3)]
        try:
            assert [s.name for s in shards] == ["shard-0", "shard-1", "shard-2"]
        finally:
            for shard in shards:
                shard.close()

    def test_requests_after_close_raise_typed_error(self):
        shard = SocketShardBackend(neighbor_set_size=2)
        shard.close()
        with pytest.raises(ShardUnavailableError):
            shard.local_closest("p0", 1)
        assert not shard.health_check()
        shard.close()  # idempotent


class TestSeverModes:
    """Every sever mode => typed error (no recovery) or transparent heal."""

    @pytest.mark.parametrize("mode", ["close", "reset", "partial_frame"])
    def test_sever_fails_typed_then_restart_heals(self, mode):
        with SocketShardBackend(neighbor_set_size=3, name=f"sever-{mode}") as shard:
            seed_peers(shard)
            before = shard.local_closest("p0", 3)
            shard.supervisor.sever(mode)
            started = time.monotonic()
            with pytest.raises(ShardUnavailableError) as error:
                shard.local_closest("p0", 3)
            assert time.monotonic() - started < 10.0  # typed, never a hang
            assert f"sever-{mode}" in str(error.value)
            shard.restart()
            assert shard.supervisor.epoch == 2
            assert shard.local_closest("p0", 3) == before

    @pytest.mark.parametrize("mode", ["close", "reset", "partial_frame"])
    def test_sever_heals_transparently_under_recovery(self, mode):
        reference = ManagementServer(neighbor_set_size=3, maintain_cache=False)
        with SocketShardBackend(
            neighbor_set_size=3, recovery=fast_recovery(), name="healing"
        ) as shard:
            seed_peers(shard, reference)
            shard.supervisor.sever(mode)
            assert shard.local_closest("p0", 3) == reference.local_closest("p0", 3)
            assert shard.supervisor.epoch == 2

    def test_unknown_sever_mode_rejected(self, backend):
        with pytest.raises(ValueError):
            backend.supervisor.sever("carrier-pigeon")


class TestStaleEpochReconnect:
    def test_stale_reconnect_fails_typed_without_recovery(self, backend):
        seed_peers(backend)
        backend.supervisor.rewind_generation()
        backend.supervisor.sever("close")
        with pytest.raises(ShardUnavailableError) as error:
            backend.restart()
        assert "stale epoch" in str(error.value)
        # The rejected hello advanced the server, so the next restart lands
        # on a fresh generation and replay converges.
        backend.restart()
        assert backend.local_closest("p0", 3)

    def test_stale_reconnect_heals_under_recovery(self):
        reference = ManagementServer(neighbor_set_size=3, maintain_cache=False)
        with SocketShardBackend(
            neighbor_set_size=3, recovery=fast_recovery(), name="stale-heal"
        ) as shard:
            seed_peers(shard, reference)
            generation_before = shard.supervisor.seen_generation
            shard.supervisor.rewind_generation()
            shard.supervisor.sever("close")
            # One failed reconnect, then convergence — inside one request.
            assert shard.local_closest("p0", 3) == reference.local_closest("p0", 3)
            assert shard.supervisor.seen_generation > generation_before


class TestNetworkChaosAcceptance:
    """The issue's three network-fault acceptance cases, run directly
    against the supervisor hooks (the scripted ``ChaosShardBackend`` plans
    are exercised in ``test_sharded_equivalence.py``)."""

    def test_partial_frame_mid_fill_stream_heals_without_gaps_or_repeats(self):
        reference = ManagementServer(neighbor_set_size=3, maintain_cache=False)
        with SocketShardBackend(
            neighbor_set_size=3, fill_chunk_size=2, recovery=fast_recovery()
        ) as shard:
            seed_peers(shard, reference, count=7)
            expected = list(reference.fill_candidates({"lmA": 1.0}))
            assert len(expected) >= 5  # the fault lands genuinely mid-stream
            stream = shard.fill_candidates({"lmA": 1.0})
            got = [next(stream), next(stream)]  # drain the buffered chunk
            shard.supervisor.sever("partial_frame")
            got.extend(stream)  # reopen on the replayed shard, fast-forward
            assert got == expected
            assert shard.supervisor.epoch == 2

    def test_conn_reset_mid_batch_insert_converges_or_fails_typed(self):
        reference = ManagementServer(neighbor_set_size=3, maintain_cache=False)
        reference.register_landmark("lmA", "lmA")
        with SocketShardBackend(
            neighbor_set_size=3, recovery=fast_recovery(), name="reset-batch"
        ) as shard:
            shard.register_landmark("lmA", "lmA")
            batch = [simple_path(f"p{i}", "lmA", access=f"a{i}") for i in range(4)]
            shard.supervisor.sever("reset")
            shard.insert_paths(batch)  # heals: restart + replay + re-issue
            reference.insert_paths(batch)
            for peer in ("p0", "p1", "p2", "p3"):
                assert shard.local_closest(peer, 3) == reference.local_closest(peer, 3)
            # Journaled exactly once: replay after ANOTHER fault stays
            # byte-identical instead of double-inserting the batch.
            ops = [op for op, _ in shard.supervisor.journal]
            assert ops == ["register_landmark", "insert_paths"]
            shard.supervisor.sever("close")
            assert shard.local_closest("p0", 3) == reference.local_closest("p0", 3)

    def test_stale_epoch_reconnect_replays_full_journal_byte_identical(self):
        reference = ManagementServer(neighbor_set_size=3, maintain_cache=False)
        with SocketShardBackend(
            neighbor_set_size=3, recovery=fast_recovery(), name="stale-replay"
        ) as shard:
            seed_peers(shard, reference, count=6)
            shard.unregister_peer("p1")
            reference.unregister_peer("p1")
            shard.supervisor.rewind_generation()
            shard.supervisor.sever("close")
            for peer in ("p0", "p2", "p3", "p4", "p5"):
                for k in (1, 3, 5):
                    assert shard.local_closest(peer, k) == reference.local_closest(
                        peer, k
                    )
            with pytest.raises(UnknownPeerError):
                shard.local_closest("p1", 3)  # the departure replayed too

    def test_failed_notify_poisons_instead_of_desyncing(self, backend, monkeypatch):
        """A half-written one-way frame would desynchronise every later
        frame on the stream: the supervisor must poison, not shrug."""
        seed_peers(backend)
        conn = backend.supervisor.connection

        def explode(frame, budget):
            raise OSError("wire cut mid-frame")

        monkeypatch.setattr(conn, "send_frame", explode)
        backend.supervisor.notify("fill_close", (1,))
        monkeypatch.undo()
        with pytest.raises(ShardUnavailableError) as error:
            backend.local_closest("p0", 2)
        assert "poisoned" in str(error.value)
        backend.restart()
        assert backend.local_closest("p0", 2)


class TestServeCLI:
    def test_parse_tcp_splits_on_last_colon(self):
        assert _parse_tcp("127.0.0.1:7421") == ("127.0.0.1", 7421)
        assert _parse_tcp("::1:7421") == ("::1", 7421)
        with pytest.raises(ValueError):
            _parse_tcp("7421")

    def test_parser_accepts_repeated_binds(self):
        options = build_serve_parser().parse_args(
            ["--tcp", "127.0.0.1:0", "--unix", "/tmp/a.sock", "--unix", "/tmp/b.sock"]
        )
        assert options.tcp == ["127.0.0.1:0"]
        assert options.unix == ["/tmp/a.sock", "/tmp/b.sock"]

    def test_shard_serve_round_trip_over_tcp(self, tmp_path):
        """End to end: ``repro-experiments shard-serve`` in a real process,
        a :class:`SocketShardBackend` dialled at its printed address."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.abspath("src"), env.get("PYTHONPATH", "")])
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "shard-serve", "--tcp", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline().strip()
            assert line.startswith("listening tcp:"), line
            host, port = line.removeprefix("listening tcp:").rsplit(":", 1)
            reference = ManagementServer(neighbor_set_size=3, maintain_cache=False)
            with SocketShardBackend(
                address=(host, int(port)), neighbor_set_size=3, name="wan-shard"
            ) as shard:
                seed_peers(shard, reference)
                for peer in ("p0", "p1", "p2", "p3"):
                    assert shard.local_closest(peer, 3) == reference.local_closest(
                        peer, 3
                    )
        finally:
            process.terminate()
            process.wait(timeout=10)
