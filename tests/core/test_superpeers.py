"""Tests for the super-peer deployment of the management service."""

from __future__ import annotations

import pytest

from repro.core.management_server import ManagementServer
from repro.core.path import RouterPath
from repro.core.superpeers import (
    PARTITION_CONTIGUOUS,
    PARTITION_ROUND_ROBIN,
    SuperPeerDirectory,
    partition_landmarks,
)
from repro.exceptions import ConfigurationError, LandmarkError, UnknownPeerError


def path(peer, routers, landmark):
    return RouterPath.from_routers(peer, landmark, routers)


LANDMARKS = [("lmA", "lmA"), ("lmB", "lmB"), ("lmC", "lmC"), ("lmD", "lmD")]
LANDMARK_DISTANCES = {
    ("lmA", "lmB"): 4.0,
    ("lmA", "lmC"): 6.0,
    ("lmA", "lmD"): 8.0,
    ("lmB", "lmC"): 5.0,
    ("lmB", "lmD"): 7.0,
    ("lmC", "lmD"): 3.0,
}


@pytest.fixture()
def directory() -> SuperPeerDirectory:
    return SuperPeerDirectory.deploy(
        LANDMARKS, super_peer_count=2, neighbor_set_size=3,
        landmark_distances=LANDMARK_DISTANCES,
    )


@pytest.fixture()
def populated(directory) -> SuperPeerDirectory:
    directory.register_peer(path("p1", ["a1", "core", "lmA"], "lmA"))
    directory.register_peer(path("p2", ["a1", "core", "lmA"], "lmA"))
    directory.register_peer(path("p3", ["b1", "lmB"], "lmB"))
    directory.register_peer(path("p4", ["c1", "c2", "lmC"], "lmC"))
    return directory


class TestPartitioning:
    def test_round_robin_balance(self):
        groups = partition_landmarks(["a", "b", "c", "d", "e"], 2)
        assert groups == [["a", "c", "e"], ["b", "d"]]

    def test_contiguous_slices(self):
        groups = partition_landmarks(["a", "b", "c", "d", "e"], 2, policy=PARTITION_CONTIGUOUS)
        assert groups == [["a", "b", "c"], ["d", "e"]]

    def test_every_landmark_assigned_exactly_once(self):
        landmarks = [f"lm{i}" for i in range(7)]
        for policy in (PARTITION_ROUND_ROBIN, PARTITION_CONTIGUOUS):
            groups = partition_landmarks(landmarks, 3, policy=policy)
            flattened = [lm for group in groups for lm in group]
            assert sorted(flattened) == sorted(landmarks)

    def test_more_super_peers_than_landmarks_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_landmarks(["a"], 2)

    def test_empty_landmarks_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_landmarks([], 1)


class TestDeployment:
    def test_deploy_creates_expected_super_peers(self, directory):
        assert len(directory.super_peers()) == 2
        assert sorted(directory.landmarks()) == ["lmA", "lmB", "lmC", "lmD"]
        # Round-robin over 2: sp0 owns lmA+lmC, sp1 owns lmB+lmD.
        assert directory.owner_of_landmark("lmA").super_peer_id == "sp0"
        assert directory.owner_of_landmark("lmB").super_peer_id == "sp1"

    def test_each_super_peer_embeds_a_management_server(self, directory):
        for super_peer in directory.super_peers():
            assert isinstance(super_peer.server, ManagementServer)
            assert super_peer.landmark_ids

    def test_duplicate_super_peer_rejected(self, directory):
        with pytest.raises(ConfigurationError):
            directory.add_super_peer("sp0", [("lmX", "rX")])

    def test_landmark_cannot_be_owned_twice(self, directory):
        with pytest.raises(LandmarkError):
            directory.add_super_peer("sp9", [("lmA", "lmA")])

    def test_super_peer_needs_landmarks(self, directory):
        with pytest.raises(ConfigurationError):
            directory.add_super_peer("sp9", [])

    def test_landmark_router_lookup(self, directory):
        assert directory.landmark_router("lmC") == "lmC"
        with pytest.raises(LandmarkError):
            directory.landmark_router("lmZ")


class TestRegistration:
    def test_registration_routed_to_owner(self, populated):
        assert populated.owner_of_peer("p1").super_peer_id == "sp0"
        assert populated.owner_of_peer("p3").super_peer_id == "sp1"
        assert populated.peer_count == 4
        assert populated.has_peer("p4")
        assert populated.forwarded_registrations == 4

    def test_load_by_super_peer(self, populated):
        load = populated.load_by_super_peer()
        assert load["sp0"] == 3  # p1, p2 (lmA) + p4 (lmC)
        assert load["sp1"] == 1  # p3 (lmB)
        assert sum(load.values()) == populated.peer_count

    def test_same_region_neighbors_preferred(self, populated):
        neighbors = populated.register_peer(path("p5", ["a9", "a1", "core", "lmA"], "lmA"))
        ids = [peer for peer, _ in neighbors]
        assert ids[0] in {"p1", "p2"}

    def test_sparse_region_padded_with_remote_candidates(self, populated):
        # p3 is alone under lmB (super-peer sp1); its list is padded with
        # cross-region estimates.
        neighbors = populated.closest_peers("p3", k=3)
        assert len(neighbors) == 3
        assert all(peer != "p3" for peer, _ in neighbors)
        assert populated.cross_region_queries > 0

    def test_unregister(self, populated):
        populated.unregister_peer("p2")
        assert not populated.has_peer("p2")
        assert populated.peer_count == 3
        with pytest.raises(UnknownPeerError):
            populated.unregister_peer("p2")

    def test_moving_to_landmark_of_other_super_peer(self, populated):
        populated.register_peer(path("p1", ["b9", "lmB"], "lmB"))
        assert populated.owner_of_peer("p1").super_peer_id == "sp1"
        assert populated.peer_count == 4
        # The old super-peer no longer knows the peer.
        assert not populated.super_peer("sp0").server.has_peer("p1")

    def test_unknown_landmark_rejected(self, populated):
        with pytest.raises(LandmarkError):
            populated.register_peer(path("p9", ["x", "lmZ"], "lmZ"))


class TestDistances:
    def test_same_region_distance_uses_tree(self, populated):
        assert populated.estimate_distance("p1", "p2") == 2.0

    def test_cross_region_distance_uses_landmark_detour(self, populated):
        # p1: 3 hops to lmA; p3: 2 hops to lmB; lmA-lmB = 4.
        assert populated.estimate_distance("p1", "p3") == 3 + 4 + 2

    def test_unknown_peer_raises(self, populated):
        with pytest.raises(UnknownPeerError):
            populated.estimate_distance("p1", "ghost")

    def test_federation_matches_single_server_quality(self):
        """Same-landmark answers are identical whether sharded or not."""
        single = ManagementServer(neighbor_set_size=3, landmark_distances=LANDMARK_DISTANCES)
        for landmark_id, router in LANDMARKS:
            single.register_landmark(landmark_id, router)
        federated = SuperPeerDirectory.deploy(
            LANDMARKS, super_peer_count=2, neighbor_set_size=3,
            landmark_distances=LANDMARK_DISTANCES,
        )
        routes = [
            ("p1", ["a1", "core", "lmA"], "lmA"),
            ("p2", ["a2", "core", "lmA"], "lmA"),
            ("p3", ["a1", "core", "lmA"], "lmA"),
            ("p4", ["b1", "lmB"], "lmB"),
        ]
        for peer, routers, landmark in routes:
            single.register_peer(path(peer, routers, landmark))
            federated.register_peer(path(peer, routers, landmark))
        for peer in ("p1", "p2", "p3"):
            single_answer = single.closest_peers(peer, k=2)
            federated_answer = federated.closest_peers(peer, k=2)
            assert [p for p, _ in single_answer] == [p for p, _ in federated_answer]

    def test_repr(self, populated):
        assert "super_peers=2" in repr(populated)
