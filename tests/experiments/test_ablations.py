"""Tests for the ablation studies (scaled down to run quickly)."""

from __future__ import annotations

import math

import pytest

from repro.experiments.ablations import (
    churn_study,
    landmark_count_sweep,
    landmark_placement_sweep,
    neighbor_set_size_sweep,
    superpeer_study,
    traceroute_noise_sweep,
    tree_accuracy_study,
)


class TestLandmarkSweeps:
    def test_landmark_count_sweep_rows(self):
        table = landmark_count_sweep(landmark_counts=(1, 4), peer_count=30, seed=3)
        assert table.column("landmarks") == [1, 4]
        for row in table.rows:
            assert row["scheme_ratio"] >= 1.0
            assert row["random_ratio"] >= 1.0

    def test_landmark_placement_sweep_rows(self):
        table = landmark_placement_sweep(
            strategies=("medium_degree", "random"), peer_count=30, landmark_count=3, seed=3
        )
        assert table.column("strategy") == ["medium_degree", "random"]
        for row in table.rows:
            assert row["scheme_ratio"] < row["random_ratio"] * 1.2


class TestNeighborSetSizeSweep:
    def test_rows_and_ratios(self):
        table = neighbor_set_size_sweep(sizes=(1, 3), peer_count=30, landmark_count=3, seed=5)
        assert table.column("k") == [1, 3]
        for row in table.rows:
            assert row["scheme_ratio"] >= 1.0


class TestTreeAccuracy:
    def test_same_landmark_pairs_are_accurate(self):
        table = tree_accuracy_study(peer_count=50, landmark_count=3, pair_samples=120, seed=7)
        rows = {row["pair_type"]: row for row in table.rows}
        assert "same_landmark" in rows
        same = rows["same_landmark"]
        # dtree is an upper bound on the true distance, so stretch >= 1 ...
        assert same["mean_stretch"] >= 1.0
        # ... and the core-centrality argument keeps it close to 1.
        assert same["mean_stretch"] < 1.6
        assert same["exact_fraction"] > 0.3
        if "cross_landmark" in rows:
            assert rows["cross_landmark"]["mean_stretch"] >= same["mean_stretch"] * 0.9


class TestTracerouteNoise:
    def test_quality_degrades_gracefully(self):
        table = traceroute_noise_sweep(
            anonymous_probabilities=(0.0, 0.3), peer_count=30, landmark_count=3, seed=9
        )
        clean_row, noisy_row = table.rows
        assert clean_row["anonymous_probability"] == 0.0
        assert noisy_row["anonymous_probability"] == 0.3
        # Even with 30% anonymous routers the scheme stays better than random.
        assert noisy_row["scheme_ratio"] < noisy_row["random_ratio"]
        assert noisy_row["scheme_ratio"] < 2.0


class TestSuperpeers:
    def test_sharding_preserves_quality_and_spreads_load(self):
        table = superpeer_study(
            super_peer_counts=(1, 2), peer_count=40, landmark_count=4, seed=5
        )
        rows = {row["super_peers"]: row for row in table.rows}
        assert rows[1]["max_load_fraction"] == 1.0
        assert rows[1]["cross_region_queries"] == 0
        assert rows[2]["max_load_fraction"] < 1.0
        assert rows[2]["scheme_ratio"] <= rows[1]["scheme_ratio"] + 0.2
        for row in table.rows:
            assert row["scheme_ratio"] >= 1.0


class TestChurn:
    def test_phases_and_recovery(self):
        table = churn_study(peer_count=40, landmark_count=3, departure_fraction=0.3, seed=11)
        phases = table.column("phase")
        assert phases == ["initial", "after_departures", "after_refresh"]
        rows = {row["phase"]: row for row in table.rows}
        for row in table.rows:
            assert not math.isnan(row["scheme_ratio"])
            assert row["scheme_ratio"] >= 0.99
        # Refreshing the neighbour lists never hurts relative to the stale state.
        assert rows["after_refresh"]["scheme_ratio"] <= rows["after_departures"]["scheme_ratio"] + 0.15
        assert rows["after_departures"]["online_peers"] == rows["after_refresh"]["online_peers"]
