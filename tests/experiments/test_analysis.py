"""Tests for the graph-oriented branch-point analysis."""

from __future__ import annotations

import math

import pytest

from repro.experiments.analysis import branch_point_analysis


@pytest.fixture(scope="module")
def table():
    return branch_point_analysis(peer_count=60, landmark_count=3, pair_samples=150, seed=41)


class TestBranchPointAnalysis:
    def test_all_statements_present(self, table):
        statements = table.column("statement")
        for expected in (
            "core_betweenness_share",
            "branch_in_core_fraction",
            "branch_on_true_path_fraction",
            "exact_when_branch_on_true_path",
            "exact_otherwise",
        ):
            assert expected in statements

    def test_values_are_fractions(self, table):
        for row in table.rows:
            if not math.isnan(row["value"]):
                assert 0.0 <= row["value"] <= 1.0

    def test_core_carries_most_betweenness(self, table):
        rows = {row["statement"]: row["value"] for row in table.rows}
        assert rows["core_betweenness_share"] > 0.5

    def test_branch_routers_cluster_in_the_core(self, table):
        rows = {row["statement"]: row["value"] for row in table.rows}
        assert rows["branch_in_core_fraction"] > 0.4

    def test_exactness_is_explained_by_branch_on_true_path(self, table):
        """dtree is exact precisely when the branch router lies on a true shortest path."""
        rows = {row["statement"]: row["value"] for row in table.rows}
        assert rows["exact_when_branch_on_true_path"] == pytest.approx(1.0)
        if not math.isnan(rows["exact_otherwise"]):
            assert rows["exact_otherwise"] < rows["exact_when_branch_on_true_path"]

    def test_metadata_counts_pairs(self, table):
        assert table.metadata["same_landmark_pairs"] > 10
