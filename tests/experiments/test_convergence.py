"""Tests for the convergence (quicker-than-coordinates) study."""

from __future__ import annotations

import pytest

from repro.experiments.convergence import run_convergence_study


@pytest.fixture(scope="module")
def table():
    return run_convergence_study(
        peer_count=40,
        landmark_count=3,
        neighbor_set_size=3,
        vivaldi_round_schedule=(1, 4),
        seed=19,
    )


class TestConvergenceStudy:
    def test_all_schemes_present(self, table):
        schemes = table.column("scheme")
        assert "path_tree" in schemes
        assert "gnp" in schemes
        assert "binning" in schemes
        assert "random" in schemes
        assert "vivaldi_r1" in schemes and "vivaldi_r4" in schemes

    def test_ratios_at_least_one(self, table):
        for row in table.rows:
            assert row["scheme_ratio"] >= 0.99

    def test_path_tree_beats_early_vivaldi(self, table):
        rows = {row["scheme"]: row for row in table.rows}
        assert rows["path_tree"]["scheme_ratio"] <= rows["vivaldi_r1"]["scheme_ratio"] + 0.05

    def test_path_tree_beats_random(self, table):
        rows = {row["scheme"]: row for row in table.rows}
        assert rows["path_tree"]["scheme_ratio"] < rows["random"]["scheme_ratio"]

    def test_setup_times_reflect_measurement_effort(self, table):
        rows = {row["scheme"]: row for row in table.rows}
        assert rows["random"]["setup_time_ms"] == 0.0
        assert rows["vivaldi_r4"]["setup_time_ms"] > rows["vivaldi_r1"]["setup_time_ms"]
        # The paper's point: the path-tree answer arrives much sooner than a
        # converged coordinate system's.
        assert rows["path_tree"]["setup_time_ms"] < rows["vivaldi_r4"]["setup_time_ms"]

    def test_metadata(self, table):
        assert table.metadata["peers"] == 40
        assert table.metadata["k"] == 3
