"""Tests for the Figure 1 reproduction harness."""

from __future__ import annotations

import pytest

from repro.experiments.figure1 import (
    Figure1Config,
    PAPER_PEER_COUNTS,
    evaluate_population,
    quick_figure1_config,
    run_figure1,
    run_single_seed,
)
from repro.topology.internet_mapper import RouterMapConfig

from ..conftest import SMALL_MAP_KWARGS


def tiny_config(seed: int = 13) -> Figure1Config:
    return Figure1Config(
        peer_counts=(25, 40),
        landmark_count=3,
        neighbor_set_size=3,
        seeds=(seed,),
        router_map_config=RouterMapConfig(seed=seed, **SMALL_MAP_KWARGS),
    )


class TestConfig:
    def test_paper_defaults(self):
        config = Figure1Config()
        assert tuple(config.peer_counts) == PAPER_PEER_COUNTS
        assert config.landmark_count == 10
        assert len(config.seeds) >= 3

    def test_quick_config_is_small(self):
        config = quick_figure1_config()
        assert max(config.peer_counts) <= 200
        assert config.router_map_config is not None

    def test_invalid_config_rejected(self):
        with pytest.raises(Exception):
            Figure1Config(peer_counts=(0,))
        with pytest.raises(ValueError):
            Figure1Config(seeds=())


class TestEvaluatePopulation:
    def test_comparison_fields(self, fresh_scenario):
        comparison = evaluate_population(fresh_scenario, random_seed=1)
        assert comparison.peers == fresh_scenario.config.peer_count
        assert comparison.cost_closest > 0
        assert comparison.cost_closest <= comparison.cost_scheme <= comparison.cost_random * 1.5


class TestRunSingleSeed:
    @pytest.fixture(scope="class")
    def table(self):
        return run_single_seed(tiny_config(), seed=13)

    def test_one_row_per_population_size(self, table):
        assert table.column("peers") == [25, 40]

    def test_ratios_have_the_papers_shape(self, table):
        for row in table.rows:
            # The scheme stays close to the optimum...
            assert 1.0 <= row["scheme_ratio"] < 1.6
            # ...and beats random selection.
            assert row["scheme_ratio"] < row["random_ratio"]

    def test_costs_consistent_with_ratios(self, table):
        for row in table.rows:
            assert row["scheme_ratio"] == pytest.approx(row["D"] / row["D_closest"])
            assert row["random_ratio"] == pytest.approx(row["D_random"] / row["D_closest"])

    def test_metadata_records_parameters(self, table):
        assert table.metadata["k"] == 3
        assert table.metadata["landmarks"] == 3


class TestRunFigure1:
    def test_single_seed_passthrough(self):
        table = run_figure1(tiny_config(seed=17))
        assert len(table) == 2

    def test_multi_seed_averaging(self):
        config = Figure1Config(
            peer_counts=(25,),
            landmark_count=3,
            neighbor_set_size=3,
            seeds=(1, 2),
            router_map_config=RouterMapConfig(seed=1, **SMALL_MAP_KWARGS),
        )
        table = run_figure1(config)
        assert len(table) == 1
        assert table.metadata.get("seeds_merged") == 2
        row = table.rows[0]
        assert row["scheme_ratio"] < row["random_ratio"]
