"""Tests for the lossy-wire protocol experiment sweep."""

from __future__ import annotations

import pytest

from repro.experiments.protocol_sim import (
    FAMILIES,
    ProtocolSimConfig,
    quick_protocol_sim_config,
    run_protocol_family,
    run_protocol_sim,
)
from repro.experiments.runner import available_experiments

TINY = ProtocolSimConfig(
    peers=8,
    beacon_intervals_ms=(250.0,),
    loss_rates=(0.0, 0.2),
    duration_ms=2_000.0,
)


class TestSweep:
    def test_table_shape_covers_the_whole_grid(self):
        table = run_protocol_sim(TINY)
        assert table.name == "protocol-sim"
        assert len(table.rows) == len(FAMILIES) * 1 * 2
        assert {(row["family"], row["loss"]) for row in table.rows} == {
            (family, loss) for family in FAMILIES for loss in (0.0, 0.2)
        }
        assert table.metadata["duration_ms"] == 2_000.0
        for row in table.rows:
            assert row["peers"] == 8
            assert row["messages_per_sec"] > 0
            if row["loss"] == 0.0:
                # With a perfect wire every family discovers everyone.
                assert row["discovered"] == 8
        handover_rows = [
            row for row in table.rows if row["family"] == "mobility-handover"
        ]
        assert all(row["staleness_p50_ms"] is not None for row in handover_rows)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            run_protocol_family("carrier-pigeon", TINY, 250.0, 0.0)

    def test_quick_config_is_ci_sized(self):
        config = quick_protocol_sim_config()
        assert config.peers <= 16
        assert config.duration_ms <= 5_000.0
        assert len(config.beacon_intervals_ms) * len(config.loss_rates) == 4

    def test_registered_in_the_experiment_registry(self):
        names = available_experiments()
        assert "protocol-sim" in names
        assert "protocol-sim-quick" in names
