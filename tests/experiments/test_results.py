"""Tests for result tables and seed merging."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.results import ResultTable, mean_of, merge_seed_tables


def make_table(name="t", values=(1.0, 2.0)):
    table = ResultTable(name=name, columns=["peers", "ratio"])
    for index, value in enumerate(values):
        table.add_row(peers=(index + 1) * 100, ratio=value)
    return table


class TestResultTable:
    def test_add_row_and_column(self):
        table = make_table()
        assert len(table) == 2
        assert table.column("peers") == [100, 200]
        assert table.column("ratio") == [1.0, 2.0]

    def test_missing_column_in_row_rejected(self):
        table = ResultTable(name="t", columns=["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row(a=1)

    def test_unknown_column_lookup_rejected(self):
        with pytest.raises(ConfigurationError):
            make_table().column("nope")

    def test_extra_values_ignored(self):
        table = ResultTable(name="t", columns=["a"])
        table.add_row(a=1, b=2)
        assert table.rows == [{"a": 1}]

    def test_sorted_by(self):
        table = ResultTable(name="t", columns=["x"])
        for value in (3, 1, 2):
            table.add_row(x=value)
        assert table.sorted_by("x").column("x") == [1, 2, 3]
        # The original table is untouched.
        assert table.column("x") == [3, 1, 2]

    def test_to_text_contains_headers_and_values(self):
        text = make_table().to_text()
        assert "peers" in text
        assert "ratio" in text
        assert "100" in text
        assert "1.000" in text

    def test_to_csv(self):
        csv = make_table().to_csv()
        lines = csv.splitlines()
        assert lines[0] == "peers,ratio"
        assert lines[1] == "100,1.0"

    def test_json_round_trip(self):
        import json

        table = make_table()
        data = json.loads(table.to_json())
        assert data["name"] == "t"
        assert data["rows"][0]["peers"] == 100


class TestMergeSeedTables:
    def test_averages_numeric_columns(self):
        merged = merge_seed_tables([make_table(values=(1.0, 2.0)), make_table(values=(3.0, 4.0))], "peers")
        assert merged.column("ratio") == [2.0, 3.0]
        assert merged.column("peers") == [100, 200]
        assert merged.metadata["seeds_merged"] == 2

    def test_single_table_passthrough_values(self):
        merged = merge_seed_tables([make_table()], "peers")
        assert merged.column("ratio") == [1.0, 2.0]

    def test_mismatched_columns_rejected(self):
        other = ResultTable(name="t", columns=["peers", "other"])
        with pytest.raises(ConfigurationError):
            merge_seed_tables([make_table(), other], "peers")

    def test_missing_key_rejected(self):
        table_a = make_table()
        table_b = ResultTable(name="t", columns=["peers", "ratio"])
        table_b.add_row(peers=100, ratio=5.0)
        with pytest.raises(ConfigurationError):
            merge_seed_tables([table_a, table_b], "peers")

    def test_empty_list_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_seed_tables([], "peers")

    def test_non_numeric_columns_keep_first_value(self):
        table_a = ResultTable(name="t", columns=["strategy", "ratio"])
        table_a.add_row(strategy="random", ratio=1.0)
        table_b = ResultTable(name="t", columns=["strategy", "ratio"])
        table_b.add_row(strategy="random", ratio=3.0)
        merged = merge_seed_tables([table_a, table_b], "strategy")
        assert merged.rows[0]["strategy"] == "random"
        assert merged.rows[0]["ratio"] == 2.0


class TestMeanOf:
    def test_mean(self):
        assert mean_of([1.0, 2.0, 3.0]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_of([])
