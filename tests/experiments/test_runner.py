"""Tests for the experiment registry, runner and persistence helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.results import ResultTable
from repro.experiments.runner import (
    EXPERIMENTS,
    available_experiments,
    load_table,
    run_experiment,
    run_experiments,
    save_table,
)


class TestRegistry:
    def test_expected_experiments_registered(self):
        names = available_experiments()
        for expected in (
            "figure1",
            "figure1-quick",
            "landmark-count",
            "landmark-placement",
            "neighbor-set-size",
            "tree-accuracy",
            "traceroute-noise",
            "churn",
            "convergence",
        ):
            assert expected in names

    def test_registry_values_are_callables(self):
        assert all(callable(function) for function in EXPERIMENTS.values())

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("does-not-exist")

    def test_run_experiments_by_name(self, monkeypatch):
        """run_experiments dispatches through the registry (stubbed for speed)."""
        stub_table = ResultTable(name="stub", columns=["x"])
        stub_table.add_row(x=1)
        monkeypatch.setitem(EXPERIMENTS, "stub-experiment", lambda: stub_table)
        results = run_experiments(["stub-experiment"])
        assert results["stub-experiment"] is stub_table


class TestPersistence:
    def test_save_and_load_round_trip(self, tmp_path):
        table = ResultTable(name="demo", columns=["peers", "ratio"], metadata={"seed": 1})
        table.add_row(peers=100, ratio=1.25)
        path = save_table(table, tmp_path)
        assert path.name == "demo.json"
        loaded = load_table(path)
        assert loaded.name == "demo"
        assert loaded.rows == table.rows
        assert loaded.metadata["seed"] == 1

    def test_save_with_custom_stem(self, tmp_path):
        table = ResultTable(name="demo", columns=["x"])
        table.add_row(x=1)
        path = save_table(table, tmp_path, stem="custom")
        assert path.name == "custom.json"
        assert path.exists()
