"""Integration tests: the full pipeline from router map to the paper's metric.

These tests exercise several subsystems together (topology + routing + core +
baselines + metrics) on small-but-realistic inputs, and check the headline
properties the paper reports rather than individual functions.
"""

from __future__ import annotations

import pytest

from repro.core.distance import evaluate_estimator, sample_peer_pairs, true_hop_distances
from repro.metrics.proximity import compare_strategies, per_peer_ratios
from repro.metrics.ranking import precision_at_k
from repro.sim import Engine, PeerNode, ServerNode, SimulatedNetwork
from repro.streaming import MeshConfig, MeshStreamingSession

from ..conftest import make_small_scenario


class TestFigureShape:
    """The reproduced figure's qualitative claims on a small instance."""

    @pytest.fixture(scope="class")
    def comparison(self, request):
        scenario = make_small_scenario(seed=31, peer_count=50)
        scenario.join_all()
        return scenario, compare_strategies(
            scenario.scheme_neighbor_sets(),
            scenario.oracle_neighbor_sets(),
            scenario.random_neighbor_sets(),
            scenario.true_distance,
            scenario.config.neighbor_set_size,
        )

    def test_scheme_close_to_optimal(self, comparison):
        _, result = comparison
        assert 1.0 <= result.scheme_ratio < 1.5

    def test_random_clearly_worse(self, comparison):
        _, result = comparison
        assert result.random_ratio > result.scheme_ratio
        assert result.random_ratio > 1.15

    def test_most_peers_individually_near_optimal(self, comparison):
        scenario, _ = comparison
        ratios = per_peer_ratios(
            scenario.scheme_neighbor_sets(), scenario.oracle_neighbor_sets(), scenario.true_distance
        )
        near_optimal = sum(1 for ratio in ratios.values() if ratio <= 1.5)
        assert near_optimal / len(ratios) > 0.7

    def test_growing_population_does_not_degrade_the_scheme(self):
        """The paper: 'the quality of the algorithm is stable' as n grows."""
        small = make_small_scenario(seed=33, peer_count=30)
        large = make_small_scenario(seed=33, peer_count=90)
        ratios = []
        for scenario in (small, large):
            scenario.join_all()
            result = compare_strategies(
                scenario.scheme_neighbor_sets(),
                scenario.oracle_neighbor_sets(),
                scenario.random_neighbor_sets(),
                scenario.true_distance,
                scenario.config.neighbor_set_size,
            )
            ratios.append(result.scheme_ratio)
        assert abs(ratios[1] - ratios[0]) < 0.35


class TestDtreeAccuracy:
    """Claim C3: the inferred distance is an accurate upper bound."""

    def test_dtree_upper_bounds_and_tracks_true_distance(self, joined_scenario):
        scenario = joined_scenario
        pairs = sample_peer_pairs(scenario.peer_ids, 150, seed=3)
        same_landmark = [
            pair
            for pair in pairs
            if scenario.server.peer_landmark(pair[0]) == scenario.server.peer_landmark(pair[1])
        ]
        assert len(same_landmark) >= 10
        truths = true_hop_distances(
            scenario.router_map.graph, scenario.peer_routers, same_landmark
        )
        report = evaluate_estimator(scenario.server, truths)
        # dtree follows an actual route, so it can never undershoot ...
        for (peer_a, peer_b), true in truths.items():
            assert scenario.server.estimate_distance(peer_a, peer_b) >= true - 1e-9
        # ... and stays close to the true distance on average.
        assert report.mean_stretch < 1.5
        assert report.exact_fraction > 0.3

    def test_neighbor_ranking_overlaps_with_oracle(self, joined_scenario):
        scenario = joined_scenario
        k = scenario.config.neighbor_set_size
        overlaps = []
        for peer in scenario.peer_ids[:20]:
            scheme = [p for p, _ in scenario.server.closest_peers(peer, k=k)]
            optimal = scenario.oracle.select_neighbors(peer, k=k)
            overlaps.append(precision_at_k(scheme, optimal, k))
        assert sum(overlaps) / len(overlaps) > 0.4


class TestEventDrivenJoin:
    def test_simulated_flash_crowd_joins_everyone(self):
        scenario = make_small_scenario(seed=37, peer_count=20)
        engine = Engine()
        network = SimulatedNetwork(engine, scenario.router_map.graph, seed=37)
        server_node = ServerNode("server", scenario.server, network)
        network.attach_host("server", scenario.landmark_set.routers()[0], server_node)

        nodes = []
        for index, (peer_id, router) in enumerate(scenario.peer_routers.items()):
            node = PeerNode(
                host_id=peer_id,
                access_router=router,
                server_host="server",
                engine=engine,
                network=network,
                traceroute=scenario.traceroute,
            )
            network.attach_host(peer_id, router, node)
            nodes.append(node)
            engine.schedule_at(float(index * 10), node.start_join)

        engine.run()
        records = [node.record for node in nodes]
        assert all(record is not None and record.completed for record in records)
        assert scenario.server.peer_count == 20
        # Later joiners should generally receive at least one neighbour.
        late = records[-1]
        assert len(late.neighbors) >= 1
        assert late.setup_delay > 0


class TestStreamingBenefit:
    def test_proximity_overlay_uses_much_shorter_network_paths(self):
        """Chunk-exchange links of the proximity overlay cross far fewer routers.

        This is the property the paper optimises (a peer's neighbours should
        be network-close); overlay-diameter effects on end-to-end delivery are
        a separate trade-off handled by blending in long links, which the
        scheme does not preclude.
        """
        scenario = make_small_scenario(seed=41, peer_count=25)
        scenario.join_all()
        proximity_overlay = scenario.build_overlay(scenario.scheme_neighbor_sets())
        random_overlay = scenario.build_overlay(scenario.random_neighbor_sets())
        proximity_cost = proximity_overlay.mean_neighbor_cost(scenario.true_distance)
        random_cost = random_overlay.mean_neighbor_cost(scenario.true_distance)
        assert proximity_cost < random_cost * 0.85

    def test_streaming_runs_over_both_overlays(self):
        """The mesh workload completes with healthy continuity on either overlay."""
        scenario = make_small_scenario(seed=41, peer_count=25)
        scenario.join_all()
        config = MeshConfig(rounds=50, uploads_per_round=8, requests_per_round=4)
        source = scenario.peer_ids[0]
        for neighbor_sets in (scenario.scheme_neighbor_sets(), scenario.random_neighbor_sets()):
            overlay = scenario.build_overlay(neighbor_sets)
            result = MeshStreamingSession(
                overlay, source, scenario.true_distance, config=config
            ).run()
            assert result.chunks_injected == 50
            assert result.mean_continuity() > 0.5
