"""Tests for the LandmarkSet manager."""

from __future__ import annotations

import pytest

from repro.exceptions import LandmarkError
from repro.landmarks.manager import Landmark, LandmarkSet
from repro.topology.graph import Graph


@pytest.fixture()
def landmark_set(line_graph) -> LandmarkSet:
    return LandmarkSet.from_routers(line_graph, [0, 5])


class TestMembership:
    def test_from_routers_names(self, landmark_set):
        assert landmark_set.ids() == ["lm0", "lm1"]
        assert landmark_set.routers() == [0, 5]
        assert len(landmark_set) == 2
        assert "lm0" in landmark_set

    def test_add_and_get(self, line_graph):
        landmark_set = LandmarkSet(graph=line_graph)
        landmark = landmark_set.add("west", 0)
        assert landmark == Landmark(landmark_id="west", router=0)
        assert landmark_set.get("west").router == 0

    def test_duplicate_id_rejected(self, landmark_set):
        with pytest.raises(LandmarkError):
            landmark_set.add("lm0", 3)

    def test_unknown_router_rejected(self, line_graph):
        landmark_set = LandmarkSet(graph=line_graph)
        with pytest.raises(LandmarkError):
            landmark_set.add("x", 99)

    def test_remove(self, landmark_set):
        landmark_set.remove("lm1")
        assert landmark_set.ids() == ["lm0"]
        with pytest.raises(LandmarkError):
            landmark_set.get("lm1")

    def test_remove_unknown(self, landmark_set):
        with pytest.raises(LandmarkError):
            landmark_set.remove("ghost")

    def test_iteration(self, landmark_set):
        assert [landmark.landmark_id for landmark in landmark_set] == ["lm0", "lm1"]


class TestDistances:
    def test_pairwise_hop_distances(self, landmark_set):
        distances = landmark_set.pairwise_hop_distances()
        assert distances[("lm0", "lm1")] == 5.0
        assert distances[("lm1", "lm0")] == 5.0

    def test_pairwise_raises_when_disconnected(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        landmark_set = LandmarkSet.from_routers(graph, [1, 3])
        with pytest.raises(LandmarkError):
            landmark_set.pairwise_hop_distances()

    def test_closest_landmark_by_hops(self, landmark_set):
        landmark, distance = landmark_set.closest_landmark_by_hops(1)
        assert landmark.landmark_id == "lm0"
        assert distance == 1
        landmark, distance = landmark_set.closest_landmark_by_hops(4)
        assert landmark.landmark_id == "lm1"
        assert distance == 1

    def test_closest_landmark_by_latency_prefers_fast_path(self):
        graph = Graph()
        graph.add_edge("p", "a", latency=1.0)
        graph.add_edge("a", "lmNear", latency=1.0)
        graph.add_edge("p", "lmSlow", latency=100.0)
        landmark_set = LandmarkSet(graph=graph)
        landmark_set.add("near", "lmNear")
        landmark_set.add("slow", "lmSlow")
        landmark, latency = landmark_set.closest_landmark_by_latency("p")
        # lmSlow is 1 hop away but 100 ms; lmNear is 2 hops but 2 ms.
        assert landmark.landmark_id == "near"
        assert latency == pytest.approx(2.0)

    def test_empty_set_raises(self, line_graph):
        landmark_set = LandmarkSet(graph=line_graph)
        with pytest.raises(LandmarkError):
            landmark_set.closest_landmark_by_hops(0)

    def test_landmark_on_removed_router_is_skipped_not_fatal(self):
        """A landmark whose router left the topology is ignored, as the
        pre-engine BFS-from-the-query-router behaviour did."""
        graph = Graph()
        for u, v in zip(range(4), range(1, 5)):
            graph.add_edge(u, v, latency=1.0)
        landmark_set = LandmarkSet.from_routers(graph, [0, 4])
        graph.remove_node(4)
        landmark, distance = landmark_set.closest_landmark_by_hops(2)
        assert landmark.landmark_id == "lm0"
        assert distance == 2
        landmark, latency = landmark_set.closest_landmark_by_latency(2)
        assert landmark.landmark_id == "lm0"
        assert latency == pytest.approx(2.0)

    def test_coverage_histogram(self, landmark_set):
        histogram = landmark_set.coverage_histogram([0, 1, 2, 3, 4, 5])
        assert histogram["lm0"] + histogram["lm1"] == 6
        assert histogram["lm0"] >= 3
