"""Tests for landmark placement strategies."""

from __future__ import annotations

import pytest

from repro.exceptions import LandmarkError
from repro.landmarks.placement import (
    PLACEMENT_STRATEGIES,
    place_betweenness,
    place_high_degree,
    place_landmarks,
    place_medium_degree,
    place_on_router_map,
    place_random,
    place_spread,
)
from repro.topology.generators import barabasi_albert
from repro.topology.graph import Graph


@pytest.fixture(scope="module")
def scale_free():
    return barabasi_albert(200, m=2, seed=3)


class TestRandomPlacement:
    def test_count_and_uniqueness(self, scale_free):
        landmarks = place_random(scale_free, 10, seed=1)
        assert len(landmarks) == 10
        assert len(set(landmarks)) == 10

    def test_deterministic_with_seed(self, scale_free):
        assert place_random(scale_free, 5, seed=2) == place_random(scale_free, 5, seed=2)

    def test_count_larger_than_pool(self, scale_free):
        nodes = list(scale_free.nodes())[:3]
        assert sorted(place_random(scale_free, 10, candidates=nodes, seed=1)) == sorted(nodes)

    def test_empty_candidates_rejected(self, scale_free):
        with pytest.raises(LandmarkError):
            place_random(scale_free, 3, candidates=[])


class TestMediumDegree:
    def test_avoids_leaves(self, scale_free):
        landmarks = place_medium_degree(scale_free, 8, seed=1)
        assert len(landmarks) == 8
        for landmark in landmarks:
            assert scale_free.degree(landmark) >= 2

    def test_avoids_the_top_of_the_distribution(self, scale_free):
        landmarks = place_medium_degree(scale_free, 8, seed=1)
        top_degree = max(scale_free.degrees().values())
        assert all(scale_free.degree(landmark) < top_degree for landmark in landmarks)

    def test_requires_non_leaf_routers(self):
        graph = Graph()
        graph.add_edge(1, 2)
        with pytest.raises(LandmarkError):
            place_medium_degree(graph, 1)


class TestHighDegreeAndBetweenness:
    def test_high_degree_picks_hubs(self, scale_free):
        landmarks = place_high_degree(scale_free, 3)
        degrees = sorted(scale_free.degrees().values(), reverse=True)
        assert sorted((scale_free.degree(l) for l in landmarks), reverse=True) == degrees[:3]

    def test_high_degree_deterministic(self, scale_free):
        assert place_high_degree(scale_free, 4) == place_high_degree(scale_free, 4)

    def test_betweenness_on_star(self, star_graph):
        landmarks = place_betweenness(star_graph, 1, seed=1)
        assert landmarks == [0]

    def test_betweenness_count(self, scale_free):
        landmarks = place_betweenness(scale_free, 5, seed=1, pivots=16)
        assert len(landmarks) == 5


class TestSpread:
    def test_spread_separates_landmarks(self, line_graph):
        landmarks = place_spread(line_graph, 2)
        assert len(landmarks) == 2
        # On a path the two farthest-apart choices are the endpoints (or
        # nearly so); they must be at least half the path apart.
        positions = sorted(landmarks)
        assert positions[1] - positions[0] >= 3

    def test_spread_count_capped_by_pool(self, star_graph):
        landmarks = place_spread(star_graph, 20, candidates=[0, 1, 2])
        assert len(landmarks) == 3


class TestDispatch:
    def test_registry_contents(self):
        assert set(PLACEMENT_STRATEGIES) == {
            "random",
            "medium_degree",
            "high_degree",
            "betweenness",
            "spread",
        }

    def test_place_landmarks_dispatch(self, scale_free):
        landmarks = place_landmarks(scale_free, 4, strategy="random", seed=1)
        assert len(landmarks) == 4

    def test_unknown_strategy(self, scale_free):
        with pytest.raises(LandmarkError):
            place_landmarks(scale_free, 4, strategy="astrology")

    def test_place_on_router_map_medium_degree(self, small_router_map):
        landmarks = place_on_router_map(small_router_map, 5, seed=1)
        assert len(landmarks) == 5
        for landmark in landmarks:
            assert small_router_map.graph.degree(landmark) >= 3

    def test_place_on_router_map_other_strategy_excludes_leaves(self, small_router_map):
        landmarks = place_on_router_map(small_router_map, 5, strategy="random", seed=2)
        for landmark in landmarks:
            assert small_router_map.graph.degree(landmark) >= 2
