"""Tests for delay statistics and the probe-cost model."""

from __future__ import annotations

import pytest

from repro.exceptions import MetricError
from repro.metrics.latency_stats import (
    DelaySummary,
    ProbeCostModel,
    compare_delay_distributions,
)


class TestDelaySummary:
    def test_from_samples(self):
        summary = DelaySummary.from_samples([10.0, 20.0, 30.0, 40.0])
        assert summary.count == 4
        assert summary.mean == 25.0
        assert summary.median == 20.0
        assert summary.maximum == 40.0

    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            DelaySummary.from_samples([])


class TestComparison:
    def test_improvement_fraction(self):
        baseline = [100.0, 100.0, 100.0]
        candidate = [50.0, 50.0, 50.0]
        improvement = compare_delay_distributions(baseline, candidate)
        assert improvement["mean_improvement"] == pytest.approx(0.5)
        assert improvement["median_improvement"] == pytest.approx(0.5)

    def test_regression_is_negative(self):
        improvement = compare_delay_distributions([10.0], [20.0])
        assert improvement["mean_improvement"] == pytest.approx(-1.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(MetricError):
            compare_delay_distributions([0.0], [1.0])


class TestProbeCostModel:
    def test_traceroute_time_scales_with_hops(self):
        model = ProbeCostModel(per_probe_rtt_ms=40.0, probes_in_parallel=4)
        assert model.traceroute_time(4) == pytest.approx(40.0)
        assert model.traceroute_time(8) == pytest.approx(80.0)
        assert model.traceroute_time(8, landmarks_probed=2) == pytest.approx(160.0)

    def test_path_tree_setup_includes_server_round_trip(self):
        model = ProbeCostModel(per_probe_rtt_ms=40.0, probes_in_parallel=4, server_round_trip_ms=30.0)
        assert model.path_tree_setup_time(4) == pytest.approx(70.0)

    def test_coordinate_setup_time(self):
        model = ProbeCostModel(per_round_interval_ms=500.0, per_probe_rtt_ms=40.0)
        assert model.coordinate_setup_time(0) == 0.0
        assert model.coordinate_setup_time(10) == pytest.approx(5000.0)

    def test_landmark_measurement_time(self):
        model = ProbeCostModel(per_probe_rtt_ms=40.0, probes_in_parallel=4)
        assert model.landmark_measurement_time(4) == pytest.approx(40.0)
        assert model.landmark_measurement_time(5) == pytest.approx(80.0)

    def test_invalid_inputs(self):
        model = ProbeCostModel()
        with pytest.raises(MetricError):
            model.traceroute_time(0)
        with pytest.raises(MetricError):
            model.coordinate_setup_time(-1)
        with pytest.raises(MetricError):
            model.landmark_measurement_time(0)

    def test_path_tree_faster_than_many_gossip_rounds(self):
        """The paper's headline claim under the default cost model."""
        model = ProbeCostModel()
        assert model.path_tree_setup_time(15, landmarks_probed=4) < model.coordinate_setup_time(16)
