"""Tests for the paper's D metric and its ratios."""

from __future__ import annotations

import pytest

from repro.exceptions import MetricError
from repro.metrics.proximity import (
    ProximityComparison,
    compare_strategies,
    mean_population_cost,
    neighbor_cost,
    per_peer_ratios,
    population_cost,
)


def index_distance(peer_a, peer_b) -> float:
    return abs(int(peer_a[1:]) - int(peer_b[1:]))


class TestNeighborCost:
    def test_sum_of_distances(self):
        assert neighbor_cost("p0", ["p1", "p3"], index_distance) == 4.0

    def test_empty_neighbors_rejected(self):
        with pytest.raises(MetricError):
            neighbor_cost("p0", [], index_distance)

    def test_population_cost(self):
        sets = {"p0": ["p1"], "p1": ["p3"]}
        assert population_cost(sets, index_distance) == 1.0 + 2.0
        assert mean_population_cost(sets, index_distance) == 1.5

    def test_empty_population_rejected(self):
        with pytest.raises(MetricError):
            population_cost({}, index_distance)


class TestComparison:
    def _comparison(self):
        scheme = {"p0": ["p1"], "p5": ["p4"]}
        closest = {"p0": ["p1"], "p5": ["p4"]}
        random_sets = {"p0": ["p5"], "p5": ["p0"]}
        return compare_strategies(scheme, closest, random_sets, index_distance, neighbor_set_size=1)

    def test_ratios(self):
        comparison = self._comparison()
        assert comparison.peers == 2
        assert comparison.scheme_ratio == pytest.approx(1.0)
        assert comparison.random_ratio == pytest.approx(10 / 2)

    def test_as_row(self):
        row = self._comparison().as_row()
        assert row["peers"] == 2.0
        assert row["random_ratio"] == pytest.approx(5.0)

    def test_population_mismatch_rejected(self):
        with pytest.raises(MetricError):
            compare_strategies(
                {"p0": ["p1"]},
                {"p0": ["p1"], "p2": ["p1"]},
                {"p0": ["p1"]},
                index_distance,
                neighbor_set_size=1,
            )

    def test_zero_optimal_cost_rejected(self):
        comparison = ProximityComparison(
            peers=1, neighbor_set_size=1, cost_scheme=3.0, cost_closest=0.0, cost_random=5.0
        )
        with pytest.raises(MetricError):
            _ = comparison.scheme_ratio


class TestPerPeerRatios:
    def test_ratio_per_peer(self):
        scheme = {"p0": ["p3"], "p5": ["p4"]}
        closest = {"p0": ["p1"], "p5": ["p4"]}
        ratios = per_peer_ratios(scheme, closest, index_distance)
        assert ratios["p0"] == pytest.approx(3.0)
        assert ratios["p5"] == pytest.approx(1.0)

    def test_missing_oracle_entry_rejected(self):
        with pytest.raises(MetricError):
            per_peer_ratios({"p0": ["p1"]}, {}, index_distance)
