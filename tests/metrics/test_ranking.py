"""Tests for ranking-quality metrics."""

from __future__ import annotations

import pytest

from repro.exceptions import MetricError
from repro.metrics.ranking import (
    kendall_tau,
    precision_at_k,
    recall_at_k,
    relative_rank_loss,
    top_k_overlap_curve,
)


def index_distance(peer_a, peer_b) -> float:
    return abs(int(peer_a[1:]) - int(peer_b[1:]))


class TestPrecisionRecall:
    def test_perfect_overlap(self):
        assert precision_at_k(["a", "b"], ["a", "b", "c"], k=2) == 1.0
        assert recall_at_k(["a", "b"], ["a", "b"], k=2) == 1.0

    def test_partial_overlap(self):
        assert precision_at_k(["a", "x"], ["a", "b"], k=2) == 0.5
        assert recall_at_k(["a", "x"], ["a", "b"], k=2) == 0.5

    def test_no_overlap(self):
        assert precision_at_k(["x", "y"], ["a", "b"], k=2) == 0.0

    def test_short_lists(self):
        assert precision_at_k(["a"], ["a", "b", "c"], k=3) == 1.0
        assert precision_at_k([], ["a"], k=2) == 0.0
        assert recall_at_k(["a"], [], k=2) == 0.0

    def test_invalid_k(self):
        with pytest.raises(MetricError):
            precision_at_k(["a"], ["a"], k=0)
        with pytest.raises(MetricError):
            recall_at_k(["a"], ["a"], k=-1)

    def test_overlap_curve(self):
        curve = top_k_overlap_curve(["a", "b", "x"], ["a", "b", "c"], max_k=3)
        assert curve == [1.0, 1.0, pytest.approx(2 / 3)]
        with pytest.raises(MetricError):
            top_k_overlap_curve(["a"], ["a"], max_k=0)


class TestRelativeRankLoss:
    def test_optimal_selection_has_zero_loss(self):
        assert relative_rank_loss("p0", ["p1"], ["p1"], index_distance) == 0.0

    def test_suboptimal_selection_positive_loss(self):
        loss = relative_rank_loss("p0", ["p4"], ["p1"], index_distance)
        assert loss == pytest.approx(3.0)

    def test_empty_lists_rejected(self):
        with pytest.raises(MetricError):
            relative_rank_loss("p0", [], ["p1"], index_distance)

    def test_zero_optimal_cost_rejected(self):
        with pytest.raises(MetricError):
            relative_rank_loss("p0", ["p1"], ["p0"], index_distance)


class TestKendallTau:
    def test_perfectly_concordant(self):
        pairs = [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]
        assert kendall_tau(pairs) == 1.0

    def test_perfectly_discordant(self):
        pairs = [(1.0, 30.0), (2.0, 20.0), (3.0, 10.0)]
        assert kendall_tau(pairs) == -1.0

    def test_mixed(self):
        pairs = [(1.0, 10.0), (2.0, 30.0), (3.0, 20.0)]
        assert -1.0 < kendall_tau(pairs) < 1.0

    def test_requires_two_pairs(self):
        with pytest.raises(MetricError):
            kendall_tau([(1.0, 1.0)])
