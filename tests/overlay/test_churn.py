"""Tests for the churn model."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.overlay.churn import (
    EVENT_CRASH,
    EVENT_JOIN,
    EVENT_LEAVE,
    ChurnModel,
    churn_statistics,
)


class TestDraws:
    def test_session_lengths_positive(self):
        model = ChurnModel(mean_session_s=100.0, seed=1)
        assert all(model.session_length() > 0 for _ in range(50))

    def test_offtime_none_when_peers_never_return(self):
        model = ChurnModel(mean_offtime_s=None, seed=1)
        assert model.offtime_length() is None

    def test_departure_kind_respects_crash_fraction(self):
        all_crash = ChurnModel(crash_fraction=1.0, seed=1)
        assert all(all_crash.departure_kind() == EVENT_CRASH for _ in range(20))
        never_crash = ChurnModel(crash_fraction=0.0, seed=1)
        assert all(never_crash.departure_kind() == EVENT_LEAVE for _ in range(20))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(Exception):
            ChurnModel(mean_session_s=0.0)
        with pytest.raises(Exception):
            ChurnModel(crash_fraction=1.5)


class TestSchedule:
    def test_events_sorted_and_within_horizon(self):
        model = ChurnModel(mean_session_s=100.0, mean_offtime_s=50.0, seed=3)
        events = model.schedule([f"p{i}" for i in range(10)], horizon_s=600.0)
        times = [event.time for event in events]
        assert times == sorted(times)
        assert all(0.0 <= time < 600.0 for time in times)

    def test_every_peer_joins_first(self):
        model = ChurnModel(seed=4)
        events = model.schedule(["a", "b", "c"], horizon_s=400.0)
        first_event_per_peer = {}
        for event in events:
            first_event_per_peer.setdefault(event.peer_id, event.kind)
        assert all(kind == EVENT_JOIN for kind in first_event_per_peer.values())

    def test_join_and_leave_alternate_per_peer(self):
        model = ChurnModel(mean_session_s=60.0, mean_offtime_s=30.0, seed=5)
        events = model.schedule(["solo"], horizon_s=2000.0)
        kinds = [event.kind for event in events]
        online = False
        for kind in kinds:
            if kind == EVENT_JOIN:
                assert not online
                online = True
            else:
                assert online
                online = False

    def test_non_returning_peers_have_at_most_one_cycle(self):
        model = ChurnModel(mean_session_s=10.0, mean_offtime_s=None, seed=6)
        events = model.schedule(["a", "b"], horizon_s=10_000.0)
        per_peer_joins = {}
        for event in events:
            if event.kind == EVENT_JOIN:
                per_peer_joins[event.peer_id] = per_peer_joins.get(event.peer_id, 0) + 1
        assert all(count == 1 for count in per_peer_joins.values())

    def test_invalid_horizon(self):
        with pytest.raises(ConfigurationError):
            ChurnModel(seed=1).schedule(["a"], horizon_s=0.0)

    def test_deterministic_with_seed(self):
        events_a = ChurnModel(seed=7).schedule(["a", "b"], horizon_s=500.0)
        events_b = ChurnModel(seed=7).schedule(["a", "b"], horizon_s=500.0)
        assert events_a == events_b


class TestStatistics:
    def test_counts(self):
        model = ChurnModel(mean_session_s=50.0, mean_offtime_s=25.0, crash_fraction=0.5, seed=8)
        events = model.schedule([f"p{i}" for i in range(20)], horizon_s=1000.0)
        joins, leaves, crashes = churn_statistics(events)
        assert joins == sum(1 for event in events if event.kind == EVENT_JOIN)
        assert leaves + crashes == sum(1 for event in events if event.kind != EVENT_JOIN)
        assert joins >= 20
        assert crashes > 0
        assert leaves > 0
