"""Tests for the overlay maintenance loop."""

from __future__ import annotations

import pytest

from repro.core.management_server import ManagementServer
from repro.core.path import RouterPath
from repro.exceptions import OverlayError
from repro.overlay.maintenance import MaintenancePolicy, OverlayMaintainer
from repro.overlay.overlay import Overlay


def path(peer, routers):
    return RouterPath.from_routers(peer, "lmA", routers)


ROUTES = {
    "p1": ["a1", "a2", "core", "lmA"],
    "p2": ["a3", "a2", "core", "lmA"],
    "p3": ["b1", "core", "lmA"],
    "p4": ["b1", "core", "lmA"],
    "p5": ["core", "lmA"],
}


@pytest.fixture()
def world():
    server = ManagementServer(neighbor_set_size=2)
    server.register_landmark("lmA", "lmA")
    overlay = Overlay()
    for peer, routers in ROUTES.items():
        overlay.create_peer(peer, access_router=routers[0])
        server.register_peer(path(peer, routers))
    maintainer = OverlayMaintainer(overlay, server, neighbor_set_size=2)
    return server, overlay, maintainer


class TestPolicy:
    def test_next_refresh_time(self):
        policy = MaintenancePolicy(refresh_period_s=30.0)
        assert policy.next_refresh_time(100.0) == 130.0

    def test_immediate_refresh_threshold(self):
        policy = MaintenancePolicy(dead_neighbor_threshold=0.5)
        assert policy.needs_immediate_refresh(4, 2)
        assert not policy.needs_immediate_refresh(4, 1)
        assert policy.needs_immediate_refresh(0, 0)

    def test_invalid_parameters(self):
        with pytest.raises(Exception):
            MaintenancePolicy(refresh_period_s=0.0)
        with pytest.raises(Exception):
            MaintenancePolicy(dead_neighbor_threshold=2.0)


class TestRefresh:
    def test_refresh_installs_server_answer(self, world):
        server, overlay, maintainer = world
        fresh = maintainer.refresh_peer("p3", now_s=10.0)
        assert fresh[0] == "p4"
        assert overlay.neighbors_of("p3") == fresh
        assert maintainer.stats.refreshes == 1
        assert maintainer.staleness(15.0)["p3"] == pytest.approx(5.0)

    def test_refresh_unknown_peer_rejected(self, world):
        _, _, maintainer = world
        with pytest.raises(OverlayError):
            maintainer.refresh_peer("ghost")

    def test_refresh_requires_server_registration(self, world):
        server, overlay, maintainer = world
        overlay.create_peer("outsider", access_router="x")
        with pytest.raises(OverlayError):
            maintainer.refresh_peer("outsider")

    def test_periodic_round_refreshes_everyone_initially(self, world):
        _, overlay, maintainer = world
        refreshed = maintainer.run_periodic_round(now_s=0.0)
        assert sorted(refreshed) == sorted(overlay.peers())
        for peer in overlay.peers():
            assert len(overlay.neighbors_of(peer)) <= 2

    def test_periodic_round_respects_period(self, world):
        _, _, maintainer = world
        maintainer.run_periodic_round(now_s=0.0)
        assert maintainer.run_periodic_round(now_s=10.0) == []
        assert len(maintainer.run_periodic_round(now_s=61.0)) == 5

    def test_staleness_infinite_before_first_refresh(self, world):
        _, _, maintainer = world
        assert all(value == float("inf") for value in maintainer.staleness(0.0).values())


class TestDepartures:
    def test_departed_neighbors_dropped_and_refreshed(self, world):
        server, overlay, maintainer = world
        maintainer.run_periodic_round(now_s=0.0)
        assert "p4" in overlay.neighbors_of("p3")

        server.unregister_peer("p4")
        refreshed = maintainer.handle_departures(["p4"], now_s=5.0)
        overlay.remove_peer("p4")

        assert "p3" in refreshed  # p3 lost half (or more) of its neighbours
        assert all("p4" not in overlay.neighbors_of(peer) for peer in overlay.peers())
        assert maintainer.stats.dead_neighbors_detected >= 1
        assert maintainer.stats.immediate_refreshes >= 1

    def test_small_losses_do_not_trigger_immediate_refresh(self, world):
        server, overlay, maintainer = world
        maintainer = OverlayMaintainer(
            overlay, server, neighbor_set_size=2,
            policy=MaintenancePolicy(dead_neighbor_threshold=0.9),
        )
        maintainer.run_periodic_round(now_s=0.0)
        server.unregister_peer("p5")
        refreshed = maintainer.handle_departures(["p5"], now_s=5.0)
        overlay.remove_peer("p5")
        assert refreshed == []
        assert maintainer.stats.immediate_refreshes == 0
