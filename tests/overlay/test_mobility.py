"""Tests for mobility traces and handover management."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.overlay.mobility import HandoverManager, MobilityModel, Move

from ..conftest import make_small_scenario


@pytest.fixture()
def scenario():
    scenario = make_small_scenario(seed=51, peer_count=30)
    scenario.join_all()
    return scenario


class TestMobilityModel:
    def test_requires_candidates(self):
        with pytest.raises(ConfigurationError):
            MobilityModel(candidate_routers=[])

    def test_next_router_changes_attachment(self, scenario):
        stubs = scenario.router_map.stub_routers()
        model = MobilityModel(candidate_routers=stubs, seed=1)
        current = stubs[0]
        new_router = model.next_router(scenario.router_map.graph, current)
        assert new_router in stubs
        assert new_router != current

    def test_local_moves_stay_nearby(self, scenario):
        from repro.routing.shortest_path import hop_distance

        stubs = scenario.router_map.stub_routers()
        model = MobilityModel(
            candidate_routers=stubs, local_move_probability=1.0, locality_radius=8, seed=2
        )
        current = stubs[0]
        graph = scenario.router_map.graph
        all_distances = sorted(
            hop_distance(graph, current, other) for other in stubs if other != current
        )
        for _ in range(5):
            new_router = model.next_router(graph, current)
            distance = hop_distance(graph, current, new_router)
            # A local move lands among the nearest handful of candidates.
            assert distance <= all_distances[min(len(all_distances) - 1, 10)]

    def test_trace_only_moves_mobile_fraction(self, scenario):
        stubs = scenario.router_map.stub_routers()
        model = MobilityModel(candidate_routers=stubs, mean_pause_s=50.0, seed=3)
        moves = model.trace(
            scenario.router_map.graph,
            scenario.peer_routers,
            horizon_s=400.0,
            mobile_fraction=0.2,
        )
        moving_peers = {move.peer_id for move in moves}
        assert len(moving_peers) <= int(len(scenario.peer_ids) * 0.2)
        times = [move.time_s for move in moves]
        assert times == sorted(times)
        assert all(move.new_router in stubs for move in moves)

    def test_trace_deterministic(self, scenario):
        stubs = scenario.router_map.stub_routers()
        kwargs = dict(mean_pause_s=60.0, seed=7)
        trace_a = MobilityModel(candidate_routers=stubs, **kwargs).trace(
            scenario.router_map.graph, scenario.peer_routers, horizon_s=300.0
        )
        trace_b = MobilityModel(candidate_routers=stubs, **kwargs).trace(
            scenario.router_map.graph, scenario.peer_routers, horizon_s=300.0
        )
        assert trace_a == trace_b


class TestHandover:
    def test_move_updates_server_and_attachment(self, scenario):
        manager = HandoverManager(scenario)
        peer = scenario.peer_ids[0]
        stubs = [r for r in scenario.router_map.stub_routers() if r != scenario.peer_routers[peer]]
        target = stubs[0]
        report = manager.move_peer(peer, target)
        assert report.new_router == target
        assert scenario.peer_routers[peer] == target
        assert scenario.server.peer_path(peer).access_router == target
        assert manager.handovers_executed == 1

    def test_report_metrics_are_consistent(self, scenario):
        manager = HandoverManager(scenario)
        peer = scenario.peer_ids[1]
        stubs = [r for r in scenario.router_map.stub_routers() if r != scenario.peer_routers[peer]]
        report = manager.move_peer(peer, stubs[-1])
        assert 0.0 <= report.neighbor_overlap <= 1.0
        assert report.landmark_changed == (report.old_landmark != report.new_landmark)
        k = scenario.config.neighbor_set_size
        assert len(report.new_neighbors) <= k
        # The refreshed list is priced at its true cost, which can only be
        # better than (or equal to) keeping the stale list from the new spot.
        if report.old_neighbors and report.new_neighbors:
            assert report.refreshed_neighbor_cost <= report.stale_neighbor_cost + 1e-9
            assert report.refresh_gain >= -1e-9

    def test_unknown_peer_or_router_rejected(self, scenario):
        manager = HandoverManager(scenario)
        with pytest.raises(ConfigurationError):
            manager.move_peer("ghost", scenario.router_map.stub_routers()[0])
        with pytest.raises(ConfigurationError):
            manager.move_peer(scenario.peer_ids[0], "not-a-router")

    def test_run_trace_executes_every_move(self, scenario):
        manager = HandoverManager(scenario)
        stubs = scenario.router_map.stub_routers()
        moves = [
            Move(time_s=1.0, peer_id=scenario.peer_ids[2], new_router=stubs[3]),
            Move(time_s=2.0, peer_id=scenario.peer_ids[3], new_router=stubs[4]),
        ]
        reports = manager.run_trace(moves)
        assert len(reports) == 2
        assert manager.handovers_executed == 2

    def test_neighbor_quality_preserved_after_many_handovers(self, scenario):
        """After a wave of moves + refreshes the population stays near-optimal."""
        from repro.metrics.proximity import compare_strategies

        manager = HandoverManager(scenario)
        stubs = scenario.router_map.stub_routers()
        model = MobilityModel(candidate_routers=stubs, mean_pause_s=30.0, seed=9)
        moves = model.trace(
            scenario.router_map.graph, scenario.peer_routers, horizon_s=120.0, mobile_fraction=0.3
        )
        manager.run_trace(moves)
        comparison = compare_strategies(
            scenario.scheme_neighbor_sets(),
            scenario.oracle_neighbor_sets(),
            scenario.random_neighbor_sets(),
            scenario.true_distance,
            scenario.config.neighbor_set_size,
        )
        assert comparison.scheme_ratio < comparison.random_ratio
        assert comparison.scheme_ratio < 1.6
