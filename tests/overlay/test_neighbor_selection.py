"""Tests for the neighbour-selection strategy adapters."""

from __future__ import annotations

import pytest

from repro.baselines.brute_force import BruteForceOracle
from repro.core.management_server import ManagementServer
from repro.core.path import RouterPath
from repro.exceptions import OverlayError
from repro.overlay.neighbor_selection import (
    OracleStrategy,
    PathTreeSelection,
    RandomStrategy,
    build_overlay_with_strategy,
)
from repro.overlay.overlay import Overlay
from repro.topology.graph import Graph


def path(peer, routers):
    return RouterPath.from_routers(peer, "lmA", routers)


@pytest.fixture()
def server() -> ManagementServer:
    server = ManagementServer(neighbor_set_size=3)
    server.register_landmark("lmA", "lmA")
    server.register_peer(path("p1", ["a1", "core", "lmA"]))
    server.register_peer(path("p2", ["a1", "core", "lmA"]))
    server.register_peer(path("p3", ["b1", "core", "lmA"]))
    server.register_peer(path("p4", ["b2", "b1", "core", "lmA"]))
    return server


class TestPathTreeSelection:
    def test_returns_closest_peers(self, server):
        strategy = PathTreeSelection(server)
        assert strategy.name == "path_tree"
        neighbors = strategy.select_neighbors("p1", k=2)
        assert neighbors[0] == "p2"
        assert len(neighbors) == 2

    def test_exclusion_is_compensated(self, server):
        strategy = PathTreeSelection(server)
        neighbors = strategy.select_neighbors("p1", k=2, exclude={"p2"})
        assert "p2" not in neighbors
        assert len(neighbors) == 2

    def test_unregistered_peer_raises(self, server):
        strategy = PathTreeSelection(server)
        with pytest.raises(OverlayError):
            strategy.select_neighbors("ghost", k=2)


class TestAdapters:
    def test_random_strategy(self):
        strategy = RandomStrategy(seed=1)
        population = [f"p{i}" for i in range(10)]
        neighbors = strategy.select_neighbors("p0", population, k=4)
        assert len(neighbors) == 4
        assert "p0" not in neighbors

    def test_oracle_strategy(self, line_graph):
        oracle = BruteForceOracle(line_graph, {"a": 0, "b": 1, "c": 5})
        strategy = OracleStrategy(oracle)
        assert strategy.select_neighbors("a", k=1) == ["b"]


class TestBuildOverlay:
    def test_every_peer_gets_neighbors(self, server):
        overlay = Overlay()
        for peer in ("p1", "p2", "p3", "p4"):
            overlay.create_peer(peer, access_router="x")
        build_overlay_with_strategy(overlay, PathTreeSelection(server), k=2)
        for peer in overlay.peers():
            assert 1 <= len(overlay.neighbors_of(peer)) <= 2
            assert peer not in overlay.neighbors_of(peer)

    def test_with_random_strategy(self):
        overlay = Overlay()
        for index in range(6):
            overlay.create_peer(f"p{index}", access_router=index)
        build_overlay_with_strategy(overlay, RandomStrategy(seed=2), k=3)
        assert all(len(overlay.neighbors_of(peer)) == 3 for peer in overlay.peers())
