"""Tests for overlay bookkeeping."""

from __future__ import annotations

import pytest

from repro.exceptions import OverlayError
from repro.overlay.overlay import Overlay
from repro.overlay.peer import Peer


@pytest.fixture()
def overlay() -> Overlay:
    overlay = Overlay()
    for index in range(5):
        overlay.create_peer(f"p{index}", access_router=index)
    overlay.set_neighbors("p0", ["p1", "p2"])
    overlay.set_neighbors("p1", ["p0"])
    overlay.set_neighbors("p3", ["p4"])
    return overlay


def unit_distance(peer_a, peer_b) -> float:
    """Distance function: |index difference| between peers named p<i>."""
    return abs(int(peer_a[1:]) - int(peer_b[1:]))


class TestMembership:
    def test_counts_and_lookup(self, overlay):
        assert overlay.size == 5
        assert len(overlay) == 5
        assert "p3" in overlay
        assert overlay.has_peer("p4")
        assert overlay.peer("p0").access_router == 0

    def test_add_duplicate_rejected(self, overlay):
        with pytest.raises(OverlayError):
            overlay.add_peer(Peer(peer_id="p0", access_router=9))

    def test_unknown_peer_lookup_raises(self, overlay):
        with pytest.raises(OverlayError):
            overlay.peer("ghost")
        with pytest.raises(OverlayError):
            overlay.remove_peer("ghost")
        with pytest.raises(OverlayError):
            overlay.in_degree("ghost")

    def test_remove_peer_cleans_neighbor_lists(self, overlay):
        overlay.remove_peer("p1")
        assert not overlay.has_peer("p1")
        assert overlay.neighbors_of("p0") == ["p2"]

    def test_peer_records(self, overlay):
        records = overlay.peer_records()
        assert len(records) == 5
        assert all(isinstance(record, Peer) for record in records)


class TestNeighborLinks:
    def test_set_neighbors_requires_known_peers(self, overlay):
        with pytest.raises(OverlayError):
            overlay.set_neighbors("p0", ["p1", "ghost"])

    def test_directed_edges(self, overlay):
        edges = set(overlay.edges())
        assert ("p0", "p1") in edges
        assert ("p1", "p0") in edges
        assert ("p3", "p4") in edges
        assert ("p4", "p3") not in edges

    def test_in_degree(self, overlay):
        assert overlay.in_degree("p0") == 1
        assert overlay.in_degree("p2") == 1
        assert overlay.in_degree("p3") == 0

    def test_symmetric_neighbors(self, overlay):
        assert overlay.symmetric_neighbors_of("p4") == {"p3"}
        assert overlay.symmetric_neighbors_of("p0") == {"p1", "p2"}


class TestConnectivityAndCosts:
    def test_is_connected_false_with_two_components(self, overlay):
        assert not overlay.is_connected()

    def test_is_connected_true_when_bridged(self, overlay):
        overlay.set_neighbors("p2", ["p3"])
        assert overlay.is_connected()

    def test_empty_overlay_not_connected(self):
        assert not Overlay().is_connected()

    def test_neighbor_cost(self, overlay):
        assert overlay.neighbor_cost("p0", unit_distance) == 1 + 2
        assert overlay.neighbor_cost("p3", unit_distance) == 1

    def test_total_and_mean_cost_skip_isolated_peers(self, overlay):
        total = overlay.total_neighbor_cost(unit_distance)
        assert total == (1 + 2) + 1 + 1
        mean = overlay.mean_neighbor_cost(unit_distance)
        assert mean == pytest.approx(total / 3)

    def test_mean_cost_without_any_links_raises(self):
        overlay = Overlay()
        overlay.create_peer("p0", access_router=0)
        with pytest.raises(OverlayError):
            overlay.mean_neighbor_cost(unit_distance)
