"""Tests for the Peer record."""

from __future__ import annotations

import pytest

from repro.exceptions import OverlayError
from repro.overlay.peer import Peer


class TestPeer:
    def test_defaults(self):
        peer = Peer(peer_id="p1", access_router=10)
        assert peer.degree == 0
        assert peer.online
        assert peer.landmark_id is None
        assert peer.neighbors == []

    def test_set_neighbors(self):
        peer = Peer(peer_id="p1", access_router=10)
        peer.set_neighbors(["p2", "p3"])
        assert peer.degree == 2
        assert peer.neighbor_set() == {"p2", "p3"}

    def test_cannot_be_own_neighbor(self):
        peer = Peer(peer_id="p1", access_router=10)
        with pytest.raises(OverlayError):
            peer.set_neighbors(["p1"])
        with pytest.raises(OverlayError):
            peer.add_neighbor("p1")

    def test_add_neighbor_idempotent(self):
        peer = Peer(peer_id="p1", access_router=10)
        peer.add_neighbor("p2")
        peer.add_neighbor("p2")
        assert peer.neighbors == ["p2"]

    def test_remove_neighbor(self):
        peer = Peer(peer_id="p1", access_router=10)
        peer.set_neighbors(["p2", "p3"])
        peer.remove_neighbor("p2")
        assert peer.neighbors == ["p3"]
        peer.remove_neighbor("not-there")  # silently ignored
        assert peer.neighbors == ["p3"]
