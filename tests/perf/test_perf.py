"""Tests for the perf harness (timer, report, workloads, CLI subcommand)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_perf_parser, main, run_perf
from repro.perf.report import SCHEMA_VERSION, PerfRecord, PerfReport
from repro.perf.timer import OpTimer, Timing, time_ops
from repro.perf.workloads import (
    DEFAULT_POPULATIONS,
    build_populated_server,
    run_churn_workload,
    run_departure_workload,
    run_discovery_suite,
    run_insert_workload,
    run_query_workload,
)


class TestTimer:
    def test_timing_derived_values(self):
        timing = Timing(ops=4, total_s=2.0)
        assert timing.per_op_s == 0.5
        assert timing.per_op_us == 500_000.0
        assert timing.ops_per_s == 2.0

    def test_zero_ops_is_safe(self):
        timing = Timing(ops=0, total_s=0.0)
        assert timing.per_op_s == 0.0
        assert timing.ops_per_s == float("inf")

    def test_op_timer_accumulates_across_bursts(self):
        timer = OpTimer()
        for _ in range(3):
            with timer:
                timer.add_ops(2)
        timing = timer.timing
        assert timing.ops == 6
        assert timing.total_s >= 0.0

    def test_time_ops_counts_and_times(self):
        timing = time_ops(lambda: sum(range(100)), ops=10)
        assert timing.ops == 10
        assert timing.total_s >= 0.0


class TestReport:
    def test_record_per_op_us(self):
        record = PerfRecord(workload="query", population=100, ops=1000, total_s=0.5)
        assert record.per_op_us == pytest.approx(500.0)

    def test_round_trip(self):
        report = PerfReport(metadata={"suite": "discovery"})
        report.add(
            PerfRecord(
                workload="insert", population=10, ops=5, total_s=0.1, counters={"registrations": 5}
            )
        )
        data = report.to_dict()
        assert data["schema_version"] == SCHEMA_VERSION
        rebuilt = PerfReport.from_dict(data)
        assert rebuilt.records[0].workload == "insert"
        assert rebuilt.records[0].counters == {"registrations": 5}
        assert rebuilt.metadata == {"suite": "discovery"}

    def test_write_emits_valid_json(self, tmp_path):
        report = PerfReport()
        report.add(PerfRecord(workload="query", population=10, ops=1, total_s=0.01))
        path = report.write(tmp_path / "bench.json")
        data = json.loads(path.read_text())
        assert data["records"][0]["per_op_us"] == pytest.approx(10_000.0)

    def test_to_text_lists_all_records(self):
        report = PerfReport()
        report.add(PerfRecord(workload="churn", population=10, ops=1, total_s=0.01))
        text = report.to_text()
        assert "churn" in text
        assert "per_op_us" in text


class TestWorkloads:
    def test_build_populated_server_uses_batch_path(self):
        server = build_populated_server(30, seed=1)
        assert server.peer_count == 30
        assert server.stats.registrations == 30

    @pytest.mark.parametrize(
        "runner, name",
        [
            (run_insert_workload, "insert"),
            (run_query_workload, "query"),
            (run_departure_workload, "departure"),
            (run_churn_workload, "churn"),
        ],
    )
    def test_each_workload_produces_a_record(self, runner, name):
        record = runner(40, ops=10, seed=2)
        assert record.workload == name
        assert record.population == 40
        assert record.ops == 10
        assert record.total_s >= 0.0
        assert "registrations" in record.counters
        assert "tree_node_visits" in record.counters

    def test_query_workload_is_mostly_cache_hits(self):
        record = run_query_workload(50, ops=100, seed=2)
        assert record.counters["cache_hits"] >= 90

    def test_departure_workload_counts_reverse_index_repairs(self):
        record = run_departure_workload(50, ops=20, seed=2)
        assert record.counters["removals"] == 20
        # Reverse-index repairs happen, and never explode to O(n) per removal.
        assert 0 < record.counters["departure_updates"] < 20 * 50

    def test_churn_keeps_population_stable(self):
        record = run_churn_workload(40, ops=15, seed=2)
        assert record.counters["removals"] == 15
        assert record.counters["registrations"] == 15

    def test_suite_covers_all_workloads_and_populations(self):
        report = run_discovery_suite(populations=(20, 40), ops=5, seed=2)
        combos = {(record.workload, record.population) for record in report.records}
        assert combos == {
            (workload, population)
            for workload in ("insert", "query", "departure", "churn")
            for population in (20, 40)
        }
        assert report.metadata["populations"] == [20, 40]

    def test_default_populations_match_issue_scales(self):
        assert DEFAULT_POPULATIONS == (200, 800, 3200, 12800)


class TestCli:
    def test_perf_parser_defaults(self):
        args = build_perf_parser().parse_args([])
        assert args.populations is None
        assert args.ops is None
        assert str(args.output) == "BENCH_discovery.json"

    def test_run_perf_writes_report(self, tmp_path, capsys):
        output = tmp_path / "BENCH_discovery.json"
        code = run_perf(["--populations", "20", "--ops", "5", "--output", str(output)])
        assert code == 0
        data = json.loads(output.read_text())
        workloads = {record["workload"] for record in data["records"]}
        assert workloads == {"insert", "query", "departure", "churn"}
        assert all(record["population"] == 20 for record in data["records"])
        out = capsys.readouterr().out
        assert "insert" in out

    def test_main_dispatches_perf_subcommand(self, tmp_path):
        output = tmp_path / "bench.json"
        code = main(["perf", "--populations", "20", "--ops", "3", "--output", str(output)])
        assert code == 0
        assert output.exists()
