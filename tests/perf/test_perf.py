"""Tests for the perf harness (timer, report, workloads, CLI subcommand)."""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.cli import build_perf_parser, main, run_perf
from repro.core.sharded import ShardedManagementServer
from repro.perf.compare import CellDelta, compare_reports
from repro.perf.report import SCHEMA_VERSION, PerfRecord, PerfReport
from repro.perf.timer import OpTimer, Timing, time_ops
from repro.perf.workloads import (
    BUILD_LANDMARK_COUNT,
    DEFAULT_ARRIVAL_BATCH_SIZES,
    DEFAULT_POPULATIONS,
    DEFAULT_READER_COUNTS,
    SHARDED_LANDMARK_COUNT,
    _SERVING_LATENCY_PASSES,
    arrival_paths,
    build_map_config,
    build_populated_server,
    run_arrival_workload,
    run_build_workload,
    run_churn_workload,
    run_departure_workload,
    run_discovery_suite,
    run_insert_workload,
    run_protocol_workload,
    run_query_workload,
    run_recovery_workload,
    run_serving_workload,
)
from repro.topology.internet_mapper import RouterMapConfig

ALL_WORKLOADS = ("insert", "query", "departure", "churn", "arrival", "build", "serving")

#: The suite default: one arrival cell per batch size.
ARRIVAL_BATCH_SIZES = (1, 32, 256)

#: Tiny map for build-workload tests (the scaled default would dominate
#: test wall-clock).
SMALL_BUILD_MAP = dict(
    core_size=8,
    core_attachment=3,
    transit_size=12,
    transit_attachment=2,
    stub_size=60,
    stub_attachment=1,
)


def _algorithmic(counters):
    """Drop the host-dependent memory readings (``ru_maxrss`` is a process
    high-water mark, so it can grow between two otherwise identical cells)."""
    return {k: v for k, v in counters.items() if k not in ("peak_rss_kb", "bytes_per_peer")}


class TestTimer:
    def test_timing_derived_values(self):
        timing = Timing(ops=4, total_s=2.0)
        assert timing.per_op_s == 0.5
        assert timing.per_op_us == 500_000.0
        assert timing.ops_per_s == 2.0

    def test_zero_ops_is_safe(self):
        timing = Timing(ops=0, total_s=0.0)
        assert timing.per_op_s == 0.0
        assert timing.ops_per_s == float("inf")

    def test_op_timer_accumulates_across_bursts(self):
        timer = OpTimer()
        for _ in range(3):
            with timer:
                timer.add_ops(2)
        timing = timer.timing
        assert timing.ops == 6
        assert timing.total_s >= 0.0

    def test_time_ops_counts_and_times(self):
        timing = time_ops(lambda: sum(range(100)), ops=10)
        assert timing.ops == 10
        assert timing.total_s >= 0.0


class TestReport:
    def test_record_per_op_us(self):
        record = PerfRecord(workload="query", population=100, ops=1000, total_s=0.5)
        assert record.per_op_us == pytest.approx(500.0)

    def test_round_trip(self):
        report = PerfReport(metadata={"suite": "discovery"})
        report.add(
            PerfRecord(
                workload="insert", population=10, ops=5, total_s=0.1, counters={"registrations": 5}
            )
        )
        report.add(PerfRecord(workload="query", population=10, ops=5, total_s=0.1, shards=4))
        data = report.to_dict()
        assert data["schema_version"] == SCHEMA_VERSION
        rebuilt = PerfReport.from_dict(data)
        assert rebuilt.records[0].workload == "insert"
        assert rebuilt.records[0].counters == {"registrations": 5}
        assert rebuilt.records[0].shards is None
        assert rebuilt.records[1].shards == 4
        assert rebuilt.metadata == {"suite": "discovery"}

    def test_schema_v1_records_load_with_no_shards(self):
        """Pre-sharding reports (no 'shards' key) stay loadable/comparable."""
        data = {
            "schema_version": 1,
            "metadata": {},
            "records": [
                {"workload": "query", "population": 20, "ops": 5, "total_s": 0.01}
            ],
        }
        rebuilt = PerfReport.from_dict(data)
        assert rebuilt.records[0].shards is None
        assert rebuilt.records[0].cell == ("query", 20, None, "inline", None, None, None)

    def test_schema_v2_records_load_as_inline_backend(self):
        """Pre-backend reports (no 'backend' key) line up with inline cells."""
        data = {
            "schema_version": 2,
            "metadata": {},
            "records": [
                {"workload": "churn", "population": 20, "ops": 5, "total_s": 0.01, "shards": 2}
            ],
        }
        rebuilt = PerfReport.from_dict(data)
        assert rebuilt.records[0].backend == "inline"
        assert rebuilt.records[0].cell == ("churn", 20, 2, "inline", None, None, None)

    def test_write_emits_valid_json(self, tmp_path):
        report = PerfReport()
        report.add(PerfRecord(workload="query", population=10, ops=1, total_s=0.01))
        path = report.write(tmp_path / "bench.json")
        data = json.loads(path.read_text())
        assert data["records"][0]["per_op_us"] == pytest.approx(10_000.0)

    def test_to_text_lists_all_records(self):
        report = PerfReport()
        report.add(PerfRecord(workload="churn", population=10, ops=1, total_s=0.01))
        text = report.to_text()
        assert "churn" in text
        assert "per_op_us" in text


class TestWorkloads:
    def test_build_populated_server_uses_batch_path(self):
        server = build_populated_server(30, seed=1)
        assert server.peer_count == 30
        assert server.stats.registrations == 30

    @pytest.mark.parametrize(
        "runner, name",
        [
            (run_insert_workload, "insert"),
            (run_query_workload, "query"),
            (run_departure_workload, "departure"),
            (run_churn_workload, "churn"),
        ],
    )
    def test_each_workload_produces_a_record(self, runner, name):
        record = runner(40, ops=10, seed=2)
        assert record.workload == name
        assert record.population == 40
        assert record.ops == 10
        assert record.total_s >= 0.0
        assert "registrations" in record.counters
        assert "tree_node_visits" in record.counters

    def test_query_workload_is_mostly_cache_hits(self):
        record = run_query_workload(50, ops=100, seed=2)
        assert record.counters["cache_hits"] >= 90

    def test_departure_workload_counts_reverse_index_repairs(self):
        record = run_departure_workload(50, ops=20, seed=2)
        assert record.counters["removals"] == 20
        # Reverse-index repairs happen, and never explode to O(n) per removal.
        assert 0 < record.counters["departure_updates"] < 20 * 50

    def test_churn_keeps_population_stable(self):
        record = run_churn_workload(40, ops=15, seed=2)
        assert record.counters["removals"] == 15
        assert record.counters["registrations"] == 15

    def test_suite_covers_all_workloads_and_populations(self):
        report = run_discovery_suite(populations=(20, 40), ops=5, seed=2)
        combos = {(record.workload, record.population) for record in report.records}
        assert combos == {
            (workload, population)
            for workload in ALL_WORKLOADS
            for population in (20, 40)
        }
        arrival_cells = {
            (record.population, record.batch_size)
            for record in report.records
            if record.workload == "arrival"
        }
        assert arrival_cells == {
            (population, batch_size)
            for population in (20, 40)
            for batch_size in ARRIVAL_BATCH_SIZES
        }
        assert all(
            record.batch_size is None
            for record in report.records
            if record.workload != "arrival"
        )
        serving_cells = {
            (record.population, record.readers)
            for record in report.records
            if record.workload == "serving"
        }
        assert serving_cells == {
            (population, readers)
            for population in (20, 40)
            for readers in DEFAULT_READER_COUNTS
        }
        assert all(
            record.readers is None
            for record in report.records
            if record.workload != "serving"
        )
        assert report.metadata["populations"] == [20, 40]
        assert report.metadata["arrival_batch_sizes"] == list(ARRIVAL_BATCH_SIZES)
        assert report.metadata["reader_counts"] == list(DEFAULT_READER_COUNTS)

    def test_default_populations_match_issue_scales(self):
        assert DEFAULT_POPULATIONS == (200, 800, 3200, 12800)


class TestArrivalWorkload:
    def test_arrival_record_shape(self):
        record = run_arrival_workload(40, ops=12, seed=2, batch_size=4)
        assert record.workload == "arrival"
        assert record.population == 40
        assert record.ops == 12
        assert record.batch_size == 4
        assert record.cell == ("arrival", 40, None, "inline", 4, None, None)
        assert record.counters["registrations"] == 12
        assert "tree_node_visits" in record.counters
        assert "trie_nodes_created" in record.counters
        assert "trie_nodes_touched" in record.counters

    def test_arrival_default_batch_sizes_match_suite(self):
        assert DEFAULT_ARRIVAL_BATCH_SIZES == (1, 32, 256)

    def test_arrival_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            run_arrival_workload(40, ops=10, seed=2, batch_size=0)

    def test_arrival_batches_share_cluster_frontiers(self):
        """The tentpole's amortisation claim, counter-based: a flash-crowd
        batch groups co-attached newcomers onto one shared frontier walk, so
        big batches run measurably fewer tree queries than sequential
        arrivals of the very same peer stream."""
        sequential = run_arrival_workload(800, ops=256, seed=2, batch_size=1)
        batched = run_arrival_workload(800, ops=256, seed=2, batch_size=256)
        assert sequential.counters["tree_queries"] == 256
        assert batched.counters["tree_queries"] < sequential.counters["tree_queries"]

    def test_arrival_insert_work_is_flat_across_batch_sizes(self):
        """Batching may only change query-side work: the trie insert work
        (nodes created / traversed) is a function of the paths alone."""
        baseline = run_arrival_workload(100, ops=40, seed=2, batch_size=1).counters
        for batch_size in (8, 40):
            counters = run_arrival_workload(100, ops=40, seed=2, batch_size=batch_size).counters
            assert counters["trie_nodes_created"] == baseline["trie_nodes_created"]
            assert counters["trie_nodes_touched"] == baseline["trie_nodes_touched"]

    def test_batched_arrival_results_match_sequential_registration(self):
        """One batch of co-arriving newcomers must leave the plane in
        exactly the state sequential arrivals of the same paths would —
        the byte-identical guarantee of the batch-aware neighbour phase.
        (Batch members may see each other earlier than late sequential
        arrivals see earlier ones, so neighbour lists are compared on the
        settled plane, not per call.)"""
        newcomers = arrival_paths(64, seed=9, shards=None)
        batched = build_populated_server(300, seed=2)
        batched.register_peers(newcomers)
        sequential = build_populated_server(300, seed=2)
        sequential.register_peers(newcomers)
        assert batched.peers() == sequential.peers()
        for peer in batched.peers():
            assert batched.closest_peers(peer) == sequential.closest_peers(peer)

    def test_arrival_runs_sharded_and_process(self):
        inline = run_arrival_workload(40, ops=8, seed=2, shards=2, batch_size=4)
        assert inline.cell == ("arrival", 40, 2, "inline", 4, None, None)
        process = run_arrival_workload(40, ops=8, seed=2, shards=2, backend="process", batch_size=4)
        assert process.cell == ("arrival", 40, 2, "process", 4, None, None)
        assert _algorithmic(process.counters) == _algorithmic(inline.counters)
        assert multiprocessing.active_children() == []


class TestInsertWorkCounters:
    """The registration-side twin of the query-visit scaling assertions."""

    def test_trie_touch_work_is_linear_in_path_length_not_population(self):
        """Every insert traverses exactly the path's routers (5 in the
        synthetic hierarchy): the O(d) registration bound, independent of
        how many peers are already registered."""
        small = run_insert_workload(200, ops=50, seed=2).counters
        large = run_insert_workload(3200, ops=50, seed=2).counters
        assert small["trie_nodes_touched"] == 50 * 5
        assert large["trie_nodes_touched"] == 50 * 5

    def test_trie_creation_shrinks_as_the_trie_fills(self):
        """Denser trees share more prefixes: the same newcomer stream
        allocates fewer fresh trie nodes at larger populations, and never
        more than it touches."""
        small = run_insert_workload(200, ops=50, seed=2).counters
        large = run_insert_workload(12800, ops=50, seed=2).counters
        assert 0 < large["trie_nodes_created"] <= small["trie_nodes_created"]
        assert small["trie_nodes_created"] <= small["trie_nodes_touched"]

    def test_churn_reinsert_work_is_bounded_per_cycle(self):
        record = run_churn_workload(400, ops=30, seed=2)
        assert record.counters["trie_nodes_touched"] == 30 * 5
        assert record.counters["trie_nodes_created"] <= 30 * 5

    def test_process_backend_reports_identical_insert_work(self):
        inline = run_insert_workload(60, ops=10, seed=2, shards=2).counters
        process = run_insert_workload(60, ops=10, seed=2, shards=2, backend="process").counters
        assert inline["trie_nodes_created"] == process["trie_nodes_created"]
        assert inline["trie_nodes_touched"] == process["trie_nodes_touched"]


class TestBuildWorkload:
    def _record(self, population=30, **kwargs):
        return run_build_workload(
            population,
            seed=2,
            router_map_config=RouterMapConfig(seed=2, **SMALL_BUILD_MAP),
            **kwargs,
        )

    def test_build_record_shape(self):
        record = self._record(population=30)
        assert record.workload == "build"
        assert record.population == 30
        # One build per cell: the op count is the peer count, not --ops.
        assert record.ops == 30
        assert record.total_s > 0.0
        for counter in ("bfs_runs", "snapshot_builds", "routers", "edges", "distance_sources"):
            assert counter in record.counters
        assert record.counters["snapshot_builds"] >= 1
        assert 0 < record.counters["distance_sources"] <= 30

    def test_build_ignores_ops_override(self):
        record = self._record(population=30, ops=5)
        assert record.ops == 30

    def test_build_batches_leaf_sources(self):
        """Peers attach to degree-1 stubs, so warmed vectors must be mostly
        translate-derived — the engine's batching claim, counter-based."""
        record = self._record(population=60)
        assert record.counters["derived_vectors"] > 0
        assert record.counters["bfs_runs"] < record.counters["distance_sources"] + BUILD_LANDMARK_COUNT + 5

    def test_build_sharded_and_process_cells_tag_records(self):
        inline = self._record(population=30, shards=2)
        assert inline.cell == ("build", 30, 2, "inline", None, None, None)
        process = self._record(population=30, shards=2, backend="process")
        assert process.cell == ("build", 30, 2, "process", None, None, None)
        assert multiprocessing.active_children() == []

    def test_build_rejects_bad_backend(self):
        with pytest.raises(ValueError):
            self._record(population=30, backend="process")
        with pytest.raises(ValueError):
            self._record(population=30, backend="bogus")

    def test_build_map_config_scales_with_population(self):
        largest = build_map_config(DEFAULT_POPULATIONS[-1], seed=3)
        assert largest.total_routers == RouterMapConfig().total_routers
        small = build_map_config(50, seed=3)
        assert small.total_routers < largest.total_routers
        # Pure function of (population, seed): same inputs, same map.
        assert build_map_config(50, seed=3) == build_map_config(50, seed=3)

    def test_build_is_deterministic_in_algorithmic_work(self):
        first = self._record(population=40).counters
        second = self._record(population=40).counters
        assert first == second


class TestShardedWorkloads:
    def test_build_populated_server_sharded(self):
        server = build_populated_server(40, seed=1, shards=2)
        assert isinstance(server, ShardedManagementServer)
        assert server.peer_count == 40
        assert len(server.landmarks()) == SHARDED_LANDMARK_COUNT

    def test_sharded_population_keeps_peer_names_and_order(self):
        """Cells sample by name from peers(); names must not depend on shards."""
        single = build_populated_server(30, seed=3)
        sharded = build_populated_server(30, seed=3, shards=4)
        assert sharded.peers() == single.peers()

    @pytest.mark.parametrize(
        "runner, name",
        [
            (run_insert_workload, "insert"),
            (run_query_workload, "query"),
            (run_departure_workload, "departure"),
            (run_churn_workload, "churn"),
        ],
    )
    def test_each_workload_runs_sharded(self, runner, name):
        record = runner(40, ops=10, seed=2, shards=2)
        assert record.workload == name
        assert record.shards == 2
        assert record.total_s >= 0.0
        assert "tree_node_visits" in record.counters

    def test_sharded_query_workload_is_mostly_cache_hits(self):
        record = run_query_workload(50, ops=100, seed=2, shards=2)
        assert record.counters["cache_hits"] >= 90

    @pytest.mark.parametrize("runner", [run_insert_workload, run_churn_workload])
    def test_algorithmic_work_is_flat_across_shard_counts(self, runner):
        """The scaling acceptance claim, counter-based: spreading the same
        8-landmark population over more shards adds zero tree visits, cache
        updates or departure repairs — per-shard op cost cannot grow."""
        baseline = runner(200, ops=20, seed=2, shards=1).counters
        for shards in (2, 4, 8):
            assert runner(200, ops=20, seed=2, shards=shards).counters == baseline

    def test_suite_with_shard_counts_tags_cells(self):
        report = run_discovery_suite(
            populations=(20, 40), ops=5, seed=2, shard_counts=(1, 2),
            arrival_batch_sizes=(2,),
        )
        combos = {(record.workload, record.population, record.shards) for record in report.records}
        assert combos == {
            (workload, population, shards)
            for workload in ALL_WORKLOADS
            for population in (20, 40)
            for shards in (1, 2)
        }
        assert report.metadata["shard_counts"] == [1, 2]

    def test_workload_sampling_is_per_cell_pure(self):
        """The sampled peers of a cell never depend on which other cells ran.

        Counters are deterministic functions of the sampled peers, so
        identical counters across a standalone run, a repeat run, and a
        suite run that also measured sharded cells prove the RNG is re-seeded
        per invocation rather than shared across the suite.
        """
        standalone = run_departure_workload(40, ops=10, seed=2)
        repeat = run_departure_workload(40, ops=10, seed=2)
        assert standalone.counters == repeat.counters
        suite = run_discovery_suite(populations=(40,), ops=10, seed=2, shard_counts=(2,))
        sharded_cell = next(
            r for r in suite.records if r.workload == "departure" and r.shards == 2
        )
        sharded_repeat = run_departure_workload(40, ops=10, seed=2, shards=2)
        assert sharded_cell.counters == sharded_repeat.counters
        churn_a = run_churn_workload(40, ops=10, seed=2)
        churn_b = run_churn_workload(40, ops=10, seed=2)
        assert churn_a.counters == churn_b.counters


class TestRecoveryWorkload:
    def test_recovery_pair_shape_and_counters(self):
        plain, compacted = run_recovery_workload(30, ops=20, seed=2)
        assert plain.workload == "recovery"
        assert compacted.workload == "recovery-compacted"
        for record in (plain, compacted):
            assert record.backend == "process"
            assert record.shards == 1
            assert record.population == 30
            for counter in ("journal_len", "snapshot_bytes", "recovery_us", "live_peers"):
                assert counter in record.counters
            assert record.counters["live_peers"] == 30
        # Journal: landmark + initial insert + 2 entries per churn cycle.
        assert plain.counters["journal_len"] == 2 + 2 * 20
        assert plain.ops == plain.counters["journal_len"]
        assert plain.counters["snapshot_bytes"] == 0  # not compacted yet
        # After compaction: one restore_state entry, a real snapshot size.
        assert compacted.counters["journal_len"] == 1
        assert compacted.ops == 1
        assert compacted.counters["snapshot_bytes"] > 0
        assert multiprocessing.active_children() == []

    def test_suite_runs_recovery_only_with_the_process_backend(self):
        inline_only = run_discovery_suite(
            populations=(20,), ops=3, seed=2, shard_counts=(2,), arrival_batch_sizes=(2,)
        )
        assert not any(
            record.workload.startswith("recovery") for record in inline_only.records
        )
        assert inline_only.metadata["recovery_ops"] is None
        with_process = run_discovery_suite(
            populations=(20,), ops=3, seed=2, shard_counts=(2,),
            backends=("process",), arrival_batch_sizes=(2,), recovery_ops=5,
        )
        recovery = [
            record for record in with_process.records
            if record.workload.startswith("recovery")
        ]
        assert {record.workload for record in recovery} == {
            "recovery", "recovery-compacted"
        }
        plain = next(record for record in recovery if record.workload == "recovery")
        assert plain.counters["journal_len"] == 2 + 2 * 5  # --recovery-ops wins
        assert with_process.metadata["recovery_ops"] == 5

    def test_compaction_speeds_replay_5x_at_10k_journaled_ops(self):
        """The issue's recovery-benchmark acceptance bar: with >= 10k
        journaled operations over a small live population, snapshot-compacted
        replay recovers at least 5x faster than full-journal replay."""
        plain, compacted = run_recovery_workload(200, ops=5000, seed=3)
        assert plain.counters["journal_len"] >= 10_000
        assert compacted.counters["journal_len"] == 1
        speedup = plain.counters["recovery_us"] / max(compacted.counters["recovery_us"], 1)
        assert speedup >= 5.0, (
            f"compaction speedup {speedup:.1f}x < 5x "
            f"(full replay {plain.counters['recovery_us']}us, "
            f"compacted {compacted.counters['recovery_us']}us)"
        )
        assert multiprocessing.active_children() == []

    def test_recovery_cells_against_old_baselines_are_new_cells(self):
        """Schema v6 is additive: a pre-recovery baseline still gates every
        old cell while the recovery pair joins as new, uncompared cells."""
        baseline = _report_from_cells([("query", 200, None, 10.0)])
        current = _report_from_cells([("query", 200, None, 10.0)])
        current.add(
            PerfRecord(
                workload="recovery", population=200, ops=100, total_s=0.1,
                shards=1, backend="process",
                counters={"journal_len": 100, "snapshot_bytes": 0, "recovery_us": 100000},
            )
        )
        result = compare_reports(baseline, current)
        assert result.ok
        assert result.current_only == [("recovery", 200, 1, "process", None, None, None)]


class TestProcessBackendWorkloads:
    # Worker-process teardown is enforced suite-wide by the
    # no_leaked_workers autouse fixture in tests/conftest.py.

    def test_build_populated_server_process_backend(self):
        server = build_populated_server(30, seed=1, shards=2, backend="process")
        try:
            assert isinstance(server, ShardedManagementServer)
            assert server.peer_count == 30
        finally:
            server.close()

    def test_process_backend_requires_shards(self):
        with pytest.raises(ValueError):
            build_populated_server(30, seed=1, backend="process")
        with pytest.raises(ValueError):
            build_populated_server(30, seed=1, shards=2, backend="bogus")

    @pytest.mark.parametrize(
        "runner, name",
        [
            (run_insert_workload, "insert"),
            (run_query_workload, "query"),
            (run_departure_workload, "departure"),
            (run_churn_workload, "churn"),
        ],
    )
    def test_each_workload_runs_on_the_process_backend(self, runner, name):
        record = runner(40, ops=10, seed=2, shards=2, backend="process")
        assert record.workload == name
        assert record.shards == 2
        assert record.backend == "process"
        assert record.total_s >= 0.0
        assert "tree_node_visits" in record.counters

    @pytest.mark.parametrize(
        "runner",
        [run_insert_workload, run_query_workload, run_departure_workload, run_churn_workload],
    )
    def test_process_cells_do_identical_algorithmic_work(self, runner):
        """Crossing the process boundary may cost time, never extra work:
        coordinator counters and worker tree visits match the inline cell."""
        inline = runner(60, ops=10, seed=2, shards=2).counters
        process = runner(60, ops=10, seed=2, shards=2, backend="process").counters
        assert process == inline

    def test_suite_multiplies_backend_cells_and_tags_metadata(self):
        report = run_discovery_suite(
            populations=(20,), ops=3, seed=2, shard_counts=(2,),
            backends=("inline", "process"), arrival_batch_sizes=(2,),
        )
        combos = {
            (record.workload, record.shards, record.backend)
            for record in report.records
            if not record.workload.startswith("recovery")
            and record.workload != "serving"
        }
        assert combos == {
            (workload, 2, backend)
            for workload in ALL_WORKLOADS
            if workload != "serving"
            for backend in ("inline", "process")
        }
        # Serving cells are inline-only: the snapshot read path is the same
        # wherever the shards live, so the backend axis is degenerate for it.
        serving_backends = {
            record.backend for record in report.records if record.workload == "serving"
        }
        assert serving_backends == {"inline"}
        # A process run also measures the recovery pair (single-shard cells).
        recovery = {
            (record.workload, record.shards, record.backend)
            for record in report.records
            if record.workload.startswith("recovery")
        }
        assert recovery == {
            ("recovery", 1, "process"),
            ("recovery-compacted", 1, "process"),
        }
        assert report.metadata["backends"] == ["inline", "process"]

    def test_suite_rejects_process_backend_without_shards(self):
        with pytest.raises(ValueError):
            run_discovery_suite(populations=(20,), ops=3, backends=("process",))
        with pytest.raises(ValueError):
            run_discovery_suite(populations=(20,), ops=3, backends=("bogus",))


class TestSocketBackendWorkloads:
    # Socket/server teardown is enforced per-test: the loopback ShardServer
    # dies with the last backend, and no worker processes are involved.

    def test_build_populated_server_socket_backend(self):
        server = build_populated_server(30, seed=1, shards=2, backend="socket")
        try:
            assert isinstance(server, ShardedManagementServer)
            assert server.peer_count == 30
        finally:
            server.close()

    def test_socket_backend_requires_shards(self):
        with pytest.raises(ValueError):
            build_populated_server(30, seed=1, backend="socket")

    @pytest.mark.parametrize(
        "runner, name",
        [
            (run_insert_workload, "insert"),
            (run_query_workload, "query"),
            (run_departure_workload, "departure"),
            (run_churn_workload, "churn"),
        ],
    )
    def test_each_workload_runs_on_the_socket_backend(self, runner, name):
        record = runner(40, ops=10, seed=2, shards=2, backend="socket")
        assert record.workload == name
        assert record.shards == 2
        assert record.backend == "socket"
        assert record.total_s >= 0.0
        assert "tree_node_visits" in record.counters

    @pytest.mark.parametrize(
        "runner",
        [run_insert_workload, run_query_workload, run_departure_workload, run_churn_workload],
    )
    def test_socket_cells_do_identical_algorithmic_work(self, runner):
        """Crossing the socket may cost time, never extra work."""
        inline = runner(60, ops=10, seed=2, shards=2).counters
        socket_cell = runner(60, ops=10, seed=2, shards=2, backend="socket").counters
        assert socket_cell == inline

    def test_recovery_workload_runs_on_the_socket_backend(self):
        plain, compacted = run_recovery_workload(30, ops=20, seed=2, backend_name="socket")
        for record in (plain, compacted):
            assert record.backend == "socket"
            assert record.shards == 1
        assert plain.counters["journal_len"] == 2 + 2 * 20
        assert compacted.counters["journal_len"] == 1
        assert compacted.counters["snapshot_bytes"] > 0

    def test_suite_measures_recovery_per_remote_backend(self):
        report = run_discovery_suite(
            populations=(20,), ops=3, seed=2, shard_counts=(2,),
            backends=("process", "socket"), arrival_batch_sizes=(2,), recovery_ops=4,
        )
        recovery = {
            (record.workload, record.backend)
            for record in report.records
            if record.workload.startswith("recovery")
        }
        assert recovery == {
            ("recovery", "process"),
            ("recovery-compacted", "process"),
            ("recovery", "socket"),
            ("recovery-compacted", "socket"),
        }

    def test_suite_mixes_classic_and_sharded_cells_with_none(self):
        """shard_counts may carry None (classic single-server cells): remote
        backends skip it, inline measures it as the shards=None cell."""
        report = run_discovery_suite(
            populations=(20,), ops=3, seed=2, shard_counts=(None, 2),
            backends=("inline", "socket"), arrival_batch_sizes=(2,),
        )
        combos = {
            (record.shards, record.backend)
            for record in report.records
            if not record.workload.startswith("recovery")
        }
        assert combos == {(None, "inline"), (2, "inline"), (2, "socket")}

    def test_suite_rejects_remote_backends_without_a_real_shard_count(self):
        with pytest.raises(ValueError):
            run_discovery_suite(
                populations=(20,), ops=3, shard_counts=(None,), backends=("socket",)
            )


class TestServingWorkload:
    def test_serving_records_shape(self):
        records = run_serving_workload(60, ops=50, seed=2, reader_counts=(1, 2))
        assert [record.readers for record in records] == [1, 2]
        for record in records:
            assert record.workload == "serving"
            assert record.population == 60
            # fleet total: every reader runs every pass over the sample
            assert record.ops == 50 * record.readers * _SERVING_LATENCY_PASSES
            assert record.cell == ("serving", 60, None, "inline", None, record.readers, None)
            for counter in (
                "capacity_qps",
                "wall_qps",
                "latency_p50_ns",
                "latency_p99_ns",
                "publish_lag_us",
                "generation",
                "peak_rss_kb",
                "bytes_per_peer",
            ):
                assert counter in record.counters, counter
            assert record.counters["capacity_qps"] > 0
            assert record.counters["latency_p50_ns"] <= record.counters["latency_p99_ns"]

    def test_serving_capacity_scales_with_readers(self):
        """The lock-freedom signal: on-CPU capacity grows with the fleet
        because readers never serialise on shared state.  The threshold is
        deliberately below the ~2x ideal — CI machines are noisy — but well
        above the flat line a lock would produce."""
        single, double = run_serving_workload(800, ops=2000, seed=2, reader_counts=(1, 2))
        ratio = double.counters["capacity_qps"] / single.counters["capacity_qps"]
        assert ratio >= 1.5, f"2-reader capacity only {ratio:.2f}x the single reader"

    def test_serving_runs_on_a_sharded_plane(self):
        (record,) = run_serving_workload(60, ops=30, seed=2, shards=2, reader_counts=(2,))
        assert record.cell == ("serving", 60, 2, "inline", None, 2, None)
        assert record.counters["capacity_qps"] > 0

    def test_serving_answers_match_the_live_plane(self):
        """The perf cell measures the real read path: the snapshot served to
        the readers answers exactly like the live plane it froze."""
        from repro.core.serving import DiscoverySnapshot

        server = build_populated_server(80, seed=2)
        snapshot = DiscoverySnapshot.build(server)
        for peer in server.peers()[:20]:
            assert snapshot.closest_peers(peer) == server.closest_peers(peer)

    def test_serving_rejects_bad_reader_counts(self):
        with pytest.raises(ValueError):
            run_serving_workload(60, ops=10, seed=2, reader_counts=(1, 0))

    def test_default_reader_counts_cover_the_acceptance_sweep(self):
        assert DEFAULT_READER_COUNTS == (1, 2, 4)


class TestProtocolWorkload:
    def test_protocol_records_shape(self):
        records = run_protocol_workload(20, seed=3, loss_rates=(0.0, 0.2))
        assert [record.loss for record in records] == [0.0, 0.2]
        for record in records:
            assert record.workload == "protocol"
            assert record.population == 20
            assert record.shards is None
            assert record.backend == "inline"
            assert record.cell == ("protocol", 20, None, "inline", None, None, record.loss)
            assert record.ops > 0  # wire messages carried
            counters = record.counters
            assert counters["discovered_peers"] == 20
            assert counters["messages_per_sec"] > 0
            assert counters["maintenance_bytes_per_peer_s"] > 0
            assert counters["discovery_p99_ms"] >= counters["discovery_p50_ms"] > 0
            assert counters["peak_rss_kb"] > 0
        clean, lossy = records
        assert clean.counters["dropped_messages"] == 0
        assert clean.counters["retransmissions"] == 0
        assert lossy.counters["dropped_messages"] > 0
        assert lossy.counters["retransmissions"] > 0

    @pytest.mark.parametrize("rates", [(), (1.0,), (-0.1,), (0.0, 1.5)])
    def test_bad_loss_rates_rejected(self, rates):
        with pytest.raises(ValueError):
            run_protocol_workload(20, loss_rates=rates)

    def test_simulated_counters_are_deterministic(self):
        """Wall-clock timing varies, but the simulated-time counters — the
        paper-facing numbers — must be byte-identical across runs."""

        def counters():
            [record] = run_protocol_workload(16, seed=3, loss_rates=(0.25,))
            return record.ops, _algorithmic(record.counters)

        assert counters() == counters()

    def test_suite_runs_protocol_cells_only_when_asked(self):
        report = run_discovery_suite(
            populations=(20,), ops=30, protocol_loss_rates=(0.0,)
        )
        protocol = [r for r in report.records if r.workload == "protocol"]
        assert [record.loss for record in protocol] == [0.0]
        assert report.metadata["protocol_loss_rates"] == [0.0]
        without = run_discovery_suite(populations=(20,), ops=30)
        assert not [r for r in without.records if r.workload == "protocol"]
        assert without.metadata["protocol_loss_rates"] is None


class TestCommittedBaseline:
    """Satellite: the committed baseline must never drift behind the code.

    ``BENCH_discovery.json`` is the regression anchor CI compares against;
    a baseline recorded at an older schema silently stops gating new cells,
    so its schema version and its backend coverage are asserted here (and
    therefore in every CI run of the tier-1 suite).
    """

    @pytest.fixture()
    def baseline(self):
        import pathlib

        path = pathlib.Path(__file__).resolve().parents[2] / "BENCH_discovery.json"
        assert path.exists(), "committed perf baseline is missing"
        return json.loads(path.read_text())

    def test_schema_version_matches_the_code(self, baseline):
        assert baseline["schema_version"] == SCHEMA_VERSION

    def test_baseline_covers_every_backend_and_the_classic_cells(self, baseline):
        backends = {record["backend"] for record in baseline["records"]}
        assert {"inline", "process", "socket"} <= backends
        assert any(record["shards"] is None for record in baseline["records"])
        recovery = {
            (record["workload"], record["backend"])
            for record in baseline["records"]
            if record["workload"].startswith("recovery")
        }
        assert {("recovery", "process"), ("recovery", "socket")} <= recovery

    def test_baseline_covers_the_reader_sweep(self, baseline):
        """The concurrent-clients dimension is recorded at every default
        reader count, and every cell carries the schema-v8 memory counters."""
        serving_readers = {
            record["readers"]
            for record in baseline["records"]
            if record["workload"] == "serving"
        }
        assert set(DEFAULT_READER_COUNTS) <= serving_readers
        for record in baseline["records"]:
            assert record["counters"]["peak_rss_kb"] > 0
            assert record["counters"]["bytes_per_peer"] > 0

    def test_baseline_covers_the_protocol_loss_sweep(self, baseline):
        """Schema v9: the beaconing protocol is recorded at every default
        wire-loss rate, so CI gates the lossy-wire cells too."""
        protocol_losses = {
            record["loss"]
            for record in baseline["records"]
            if record["workload"] == "protocol"
        }
        assert protocol_losses == {0.0, 0.1, 0.3}
        for record in baseline["records"]:
            if record["workload"] == "protocol":
                assert record["counters"]["discovered_peers"] > 0
            else:
                assert record["loss"] is None


def _report_from_cells(cells):
    """Build a PerfReport from (workload, population, shards, per_op_us[, backend]) rows."""
    report = PerfReport()
    for workload, population, shards, per_op_us, *rest in cells:
        report.add(
            PerfRecord(
                workload=workload,
                population=population,
                ops=100,
                total_s=per_op_us * 100 / 1e6,
                shards=shards,
                backend=rest[0] if rest else "inline",
            )
        )
    return report


class TestCompare:
    def test_no_regression_within_threshold(self):
        baseline = _report_from_cells([("query", 200, None, 10.0), ("insert", 200, None, 50.0)])
        current = _report_from_cells([("query", 200, None, 12.0), ("insert", 200, None, 45.0)])
        result = compare_reports(baseline, current, threshold=0.25)
        assert result.ok
        assert result.regressions == []
        assert "OK" in result.to_text()

    def test_regression_beyond_threshold_fails(self):
        baseline = _report_from_cells([("query", 200, None, 10.0), ("churn", 800, None, 40.0)])
        current = _report_from_cells([("query", 200, None, 13.0), ("churn", 800, None, 40.0)])
        result = compare_reports(baseline, current, threshold=0.25)
        assert not result.ok
        assert [delta.key for delta in result.regressions] == [
            ("query", 200, None, "inline", None, None, None)
        ]
        assert "REGRESSION" in result.to_text()
        assert "FAIL" in result.to_text()

    def test_exactly_at_threshold_is_not_a_regression(self):
        baseline = _report_from_cells([("query", 200, None, 10.0)])
        current = _report_from_cells([("query", 200, None, 12.5)])
        assert compare_reports(baseline, current, threshold=0.25).ok

    def test_cells_are_keyed_by_shards_too(self):
        baseline = _report_from_cells([("query", 200, 1, 10.0), ("query", 200, 4, 10.0)])
        current = _report_from_cells([("query", 200, 1, 10.0), ("query", 200, 4, 30.0)])
        result = compare_reports(baseline, current)
        assert [delta.key for delta in result.regressions] == [("query", 200, 4, "inline", None, None, None)]

    def test_cells_are_keyed_by_backend_too(self):
        """A slow process cell never fails an inline cell, and vice versa."""
        baseline = _report_from_cells(
            [("query", 200, 2, 10.0), ("query", 200, 2, 10.0, "process")]
        )
        current = _report_from_cells(
            [("query", 200, 2, 10.0), ("query", 200, 2, 90.0, "process")]
        )
        result = compare_reports(baseline, current)
        assert [delta.key for delta in result.regressions] == [("query", 200, 2, "process", None, None, None)]

    def test_process_cells_against_inline_baseline_are_new_cells(self):
        """The --backend dimension must not break pre-v3 baselines: inline
        cells still gate, process cells join as new (uncompared) cells."""
        baseline = _report_from_cells([("query", 200, 2, 10.0)])
        current = _report_from_cells(
            [("query", 200, 2, 11.0), ("query", 200, 2, 500.0, "process")]
        )
        result = compare_reports(baseline, current)
        assert result.ok
        assert [delta.key for delta in result.deltas] == [("query", 200, 2, "inline", None, None, None)]
        assert result.current_only == [("query", 200, 2, "process", None, None, None)]

    def test_unmatched_cells_are_reported_but_never_fail(self):
        baseline = _report_from_cells([("query", 200, None, 10.0), ("query", 800, None, 10.0)])
        current = _report_from_cells([("query", 200, None, 10.0), ("query", 200, 2, 99.0)])
        result = compare_reports(baseline, current)
        assert result.ok
        assert result.baseline_only == [("query", 800, None, "inline", None, None, None)]
        assert result.current_only == [("query", 200, 2, "inline", None, None, None)]
        text = result.to_text()
        assert "baseline only" in text
        assert "new cell" in text

    def test_zero_baseline_cells_are_skipped_as_noise(self):
        baseline = _report_from_cells([("query", 200, None, 0.0)])
        current = _report_from_cells([("query", 200, None, 5.0)])
        result = compare_reports(baseline, current)
        assert result.ok
        assert result.deltas[0].ratio == float("inf")

    def test_build_cells_gate_like_any_other_workload(self):
        baseline = _report_from_cells([("build", 12800, None, 50.0), ("query", 200, None, 10.0)])
        current = _report_from_cells([("build", 12800, None, 300.0), ("query", 200, None, 10.0)])
        result = compare_reports(baseline, current, threshold=0.25)
        assert not result.ok
        assert [delta.key for delta in result.regressions] == [
            ("build", 12800, None, "inline", None, None, None)
        ]

    def test_cells_are_keyed_by_batch_size_too(self):
        """A slow arrival cell at one batch size never fails another."""
        baseline = PerfReport()
        current = PerfReport()
        for report, slow_us in ((baseline, 10.0), (current, 90.0)):
            report.add(
                PerfRecord(workload="arrival", population=200, ops=100,
                           total_s=10.0 * 100 / 1e6, batch_size=1)
            )
            report.add(
                PerfRecord(workload="arrival", population=200, ops=100,
                           total_s=slow_us * 100 / 1e6, batch_size=32)
            )
        result = compare_reports(baseline, current)
        assert [delta.key for delta in result.regressions] == [
            ("arrival", 200, None, "inline", 32, None, None)
        ]

    def test_arrival_cells_against_pre_v5_baseline_are_new_cells(self):
        baseline = _report_from_cells([("query", 200, None, 10.0)])
        current = _report_from_cells([("query", 200, None, 10.0)])
        current.add(
            PerfRecord(workload="arrival", population=200, ops=10, total_s=0.1, batch_size=32)
        )
        result = compare_reports(baseline, current)
        assert result.ok
        assert result.current_only == [("arrival", 200, None, "inline", 32, None, None)]
        assert "batch=32" in result.to_text()

    def test_cells_are_keyed_by_readers_too(self):
        """A slow serving cell at one reader count never fails another."""
        baseline = PerfReport()
        current = PerfReport()
        for report, slow_us in ((baseline, 10.0), (current, 90.0)):
            report.add(
                PerfRecord(workload="serving", population=200, ops=100,
                           total_s=10.0 * 100 / 1e6, readers=1)
            )
            report.add(
                PerfRecord(workload="serving", population=200, ops=100,
                           total_s=slow_us * 100 / 1e6, readers=4)
            )
        result = compare_reports(baseline, current)
        assert [delta.key for delta in result.regressions] == [
            ("serving", 200, None, "inline", None, 4, None)
        ]

    def test_serving_cells_against_pre_v8_baseline_are_new_cells(self):
        baseline = _report_from_cells([("query", 200, None, 10.0)])
        current = _report_from_cells([("query", 200, None, 10.0)])
        current.add(
            PerfRecord(workload="serving", population=200, ops=10, total_s=0.1, readers=2)
        )
        result = compare_reports(baseline, current)
        assert result.ok
        assert result.current_only == [("serving", 200, None, "inline", None, 2, None)]
        assert "readers=2" in result.to_text()

    def test_cells_are_keyed_by_loss_too(self):
        """A slow protocol cell at one loss rate never fails another."""
        baseline = PerfReport()
        current = PerfReport()
        for report, slow_us in ((baseline, 10.0), (current, 90.0)):
            report.add(
                PerfRecord(workload="protocol", population=200, ops=100,
                           total_s=10.0 * 100 / 1e6, loss=0.0)
            )
            report.add(
                PerfRecord(workload="protocol", population=200, ops=100,
                           total_s=slow_us * 100 / 1e6, loss=0.3)
            )
        result = compare_reports(baseline, current)
        assert [delta.key for delta in result.regressions] == [
            ("protocol", 200, None, "inline", None, None, 0.3)
        ]

    def test_protocol_cells_against_pre_v9_baseline_are_new_cells(self):
        baseline = _report_from_cells([("query", 200, None, 10.0)])
        current = _report_from_cells([("query", 200, None, 10.0)])
        current.add(
            PerfRecord(workload="protocol", population=200, ops=10, total_s=0.1, loss=0.1)
        )
        result = compare_reports(baseline, current)
        assert result.ok
        assert result.current_only == [("protocol", 200, None, "inline", None, None, 0.1)]
        assert "loss=0.1" in result.to_text()

    def test_delta_ratio(self):
        delta = CellDelta("query", 200, None, baseline_us=10.0, current_us=15.0)
        assert delta.ratio == pytest.approx(1.5)
        assert delta.is_regression(0.25)
        assert not delta.is_regression(0.6)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_reports(PerfReport(), PerfReport(), threshold=-0.1)


class TestCli:
    def test_perf_parser_defaults(self):
        args = build_perf_parser().parse_args([])
        assert args.populations is None
        assert args.ops is None
        assert str(args.output) == "BENCH_discovery.json"

    def test_run_perf_writes_report(self, tmp_path, capsys):
        output = tmp_path / "BENCH_discovery.json"
        code = run_perf(["--populations", "20", "--ops", "5", "--output", str(output)])
        assert code == 0
        data = json.loads(output.read_text())
        workloads = {record["workload"] for record in data["records"]}
        assert workloads == set(ALL_WORKLOADS)
        assert all(record["population"] == 20 for record in data["records"])
        out = capsys.readouterr().out
        assert "insert" in out
        assert "build" in out

    def test_main_dispatches_perf_subcommand(self, tmp_path):
        output = tmp_path / "bench.json"
        code = main(["perf", "--populations", "20", "--ops", "3", "--output", str(output)])
        assert code == 0
        assert output.exists()

    def test_shards_flag_runs_sharded_cells(self, tmp_path):
        output = tmp_path / "bench.json"
        code = run_perf(
            ["--populations", "20", "--ops", "3", "--shards", "1,2", "--output", str(output)]
        )
        assert code == 0
        data = json.loads(output.read_text())
        assert {record["shards"] for record in data["records"]} == {1, 2}

    @pytest.mark.parametrize("spec", ["0", "1,0", "abc", ","])
    def test_invalid_shards_spec_is_rejected(self, spec, tmp_path, capsys):
        with pytest.raises(SystemExit):
            run_perf(["--populations", "20", "--ops", "3", "--shards", spec,
                      "--output", str(tmp_path / "b.json")])

    def test_arrival_batch_sizes_flag_runs_one_cell_per_size(self, tmp_path):
        output = tmp_path / "bench.json"
        code = run_perf(
            ["--populations", "20", "--ops", "4", "--arrival-batch-sizes", "1,2",
             "--output", str(output)]
        )
        assert code == 0
        data = json.loads(output.read_text())
        arrival = [r for r in data["records"] if r["workload"] == "arrival"]
        assert sorted(r["batch_size"] for r in arrival) == [1, 2]
        assert all(r["batch_size"] is None for r in data["records"] if r["workload"] != "arrival")

    @pytest.mark.parametrize("spec", ["0", "1,0", "abc", ","])
    def test_invalid_arrival_batch_sizes_rejected(self, spec, tmp_path):
        with pytest.raises(SystemExit):
            run_perf(["--populations", "20", "--ops", "3",
                      "--arrival-batch-sizes", spec,
                      "--output", str(tmp_path / "b.json")])

    def test_readers_flag_runs_one_serving_cell_per_count(self, tmp_path):
        output = tmp_path / "bench.json"
        code = run_perf(
            ["--populations", "20", "--ops", "4", "--readers", "1,2",
             "--output", str(output)]
        )
        assert code == 0
        data = json.loads(output.read_text())
        serving = [r for r in data["records"] if r["workload"] == "serving"]
        assert sorted(r["readers"] for r in serving) == [1, 2]
        assert all(r["readers"] is None for r in data["records"] if r["workload"] != "serving")
        assert data["metadata"]["reader_counts"] == [1, 2]

    @pytest.mark.parametrize("spec", ["0", "1,0", "abc", ","])
    def test_invalid_readers_spec_is_rejected(self, spec, tmp_path):
        with pytest.raises(SystemExit):
            run_perf(["--populations", "20", "--ops", "3", "--readers", spec,
                      "--output", str(tmp_path / "b.json")])

    def test_protocol_loss_flag_runs_one_cell_per_rate(self, tmp_path):
        output = tmp_path / "bench.json"
        code = run_perf(
            ["--populations", "20", "--ops", "4", "--protocol-loss", "0,0.2",
             "--output", str(output)]
        )
        assert code == 0
        data = json.loads(output.read_text())
        protocol = [r for r in data["records"] if r["workload"] == "protocol"]
        assert sorted(r["loss"] for r in protocol) == [0.0, 0.2]
        assert all(r["loss"] is None for r in data["records"] if r["workload"] != "protocol")
        assert data["metadata"]["protocol_loss_rates"] == [0.0, 0.2]

    @pytest.mark.parametrize("spec", ["1.0", "0,-0.5", "abc", ","])
    def test_invalid_protocol_loss_spec_is_rejected(self, spec, tmp_path):
        with pytest.raises(SystemExit):
            run_perf(["--populations", "20", "--ops", "3", "--protocol-loss", spec,
                      "--output", str(tmp_path / "b.json")])

    def test_backend_flag_runs_process_cells(self, tmp_path):
        output = tmp_path / "bench.json"
        code = run_perf(
            ["--populations", "20", "--ops", "3", "--shards", "2",
             "--backend", "process", "--output", str(output)]
        )
        assert code == 0
        data = json.loads(output.read_text())
        assert {record["backend"] for record in data["records"]} == {"process"}
        assert all(
            record["shards"] == 2
            for record in data["records"]
            if not record["workload"].startswith("recovery")
        )
        # A process run also emits the single-shard recovery pair.
        assert {
            record["workload"]
            for record in data["records"]
            if record["shards"] == 1
        } == {"recovery", "recovery-compacted"}
        assert multiprocessing.active_children() == []

    def test_backend_socket_runs_socket_cells(self, tmp_path):
        output = tmp_path / "bench.json"
        code = run_perf(
            ["--populations", "20", "--ops", "3", "--shards", "2",
             "--backend", "socket", "--output", str(output)]
        )
        assert code == 0
        data = json.loads(output.read_text())
        assert {record["backend"] for record in data["records"]} == {"socket"}
        assert {
            record["workload"]
            for record in data["records"]
            if record["shards"] == 1
        } == {"recovery", "recovery-compacted"}
        assert multiprocessing.active_children() == []

    def test_shards_none_token_mixes_classic_cells(self, tmp_path):
        """--shards none,2 measures the classic single-server cells next to
        the sharded ones in one report (the full-baseline recording command)."""
        output = tmp_path / "bench.json"
        code = run_perf(
            ["--populations", "20", "--ops", "3", "--shards", "none,2",
             "--output", str(output)]
        )
        assert code == 0
        data = json.loads(output.read_text())
        assert {record["shards"] for record in data["records"]} == {None, 2}

    def test_remote_backend_with_only_none_shards_is_rejected(self, tmp_path):
        for backend in ("process", "socket"):
            with pytest.raises(SystemExit):
                run_perf(["--populations", "20", "--ops", "3", "--shards", "none",
                          "--backend", backend, "--output", str(tmp_path / "b.json")])

    def test_recovery_ops_flag_sizes_the_recovery_journal(self, tmp_path):
        output = tmp_path / "bench.json"
        code = run_perf(
            ["--populations", "20", "--ops", "3", "--shards", "2",
             "--backend", "process", "--recovery-ops", "4",
             "--output", str(output)]
        )
        assert code == 0
        data = json.loads(output.read_text())
        plain = next(
            record for record in data["records"] if record["workload"] == "recovery"
        )
        assert plain["counters"]["journal_len"] == 2 + 2 * 4
        assert data["metadata"]["recovery_ops"] == 4
        assert multiprocessing.active_children() == []

    def test_invalid_recovery_ops_is_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            run_perf(["--populations", "20", "--ops", "3", "--shards", "2",
                      "--backend", "process", "--recovery-ops", "0",
                      "--output", str(tmp_path / "b.json")])

    def test_backend_process_without_shards_is_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            run_perf(["--populations", "20", "--ops", "3", "--backend", "process",
                      "--output", str(tmp_path / "b.json")])

    @pytest.mark.parametrize("spec", ["bogus", "inline,bogus", ","])
    def test_invalid_backend_spec_is_rejected(self, spec, tmp_path, capsys):
        with pytest.raises(SystemExit):
            run_perf(["--populations", "20", "--ops", "3", "--shards", "2",
                      "--backend", spec, "--output", str(tmp_path / "b.json")])

    def test_compare_gates_inline_cells_while_process_cells_join_as_new(self, tmp_path, capsys):
        """The issue's acceptance path: an inline baseline still gates an
        'inline,process' run — process cells are listed as new, not compared."""
        baseline = tmp_path / "baseline.json"
        assert run_perf(
            ["--populations", "20", "--ops", "3", "--shards", "2",
             "--output", str(baseline)]
        ) == 0
        code = run_perf(
            ["--populations", "20", "--ops", "3", "--shards", "2",
             "--backend", "inline,process", "--output", str(tmp_path / "new.json"),
             "--compare", str(baseline), "--compare-threshold", "1000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OK: no cell regressed" in out
        assert "new cell, not compared" in out

    def test_compare_passes_against_identical_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert run_perf(["--populations", "20", "--ops", "3", "--output", str(baseline)]) == 0
        code = run_perf(
            ["--populations", "20", "--ops", "3", "--output", str(tmp_path / "new.json"),
             "--compare", str(baseline), "--compare-threshold", "1000"]
        )
        assert code == 0
        assert "OK: no cell regressed" in capsys.readouterr().out

    def test_compare_fails_on_regression(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert run_perf(["--populations", "20", "--ops", "3", "--output", str(baseline)]) == 0
        # Shrink the baseline timings so the re-run is a guaranteed regression.
        data = json.loads(baseline.read_text())
        for record in data["records"]:
            record["total_s"] = record["total_s"] / 1e6
        baseline.write_text(json.dumps(data))
        code = run_perf(
            ["--populations", "20", "--ops", "3", "--output", str(tmp_path / "new.json"),
             "--compare", str(baseline)]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "perf regression" in captured.err

    def test_compare_against_pre_build_baseline_passes_with_build_as_new_cell(
        self, tmp_path, capsys
    ):
        """Schema v3 baselines (no build cells) must keep gating the four
        classic workloads while build cells join as new, uncompared cells."""
        baseline = tmp_path / "baseline.json"
        assert run_perf(["--populations", "20", "--ops", "3", "--output", str(baseline)]) == 0
        data = json.loads(baseline.read_text())
        data["records"] = [r for r in data["records"] if r["workload"] != "build"]
        data["schema_version"] = 3
        baseline.write_text(json.dumps(data))
        code = run_perf(
            ["--populations", "20", "--ops", "3", "--output", str(tmp_path / "new.json"),
             "--compare", str(baseline), "--compare-threshold", "1000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OK: no cell regressed" in out
        assert "new cell, not compared: build@20" in out

    def test_compare_with_no_overlapping_cells_errors(self, tmp_path, capsys):
        """The gate must not pass vacuously when nothing was compared."""
        baseline = tmp_path / "baseline.json"
        assert run_perf(["--populations", "20", "--ops", "3", "--output", str(baseline)]) == 0
        code = run_perf(
            ["--populations", "20", "--ops", "3", "--shards", "2",
             "--output", str(tmp_path / "new.json"), "--compare", str(baseline)]
        )
        assert code == 1
        assert "no comparable cells" in capsys.readouterr().err

    def test_compare_with_unreadable_baseline_errors(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        code = run_perf(
            ["--populations", "20", "--ops", "3", "--output", str(tmp_path / "new.json"),
             "--compare", str(missing)]
        )
        assert code == 1
        assert "cannot read baseline" in capsys.readouterr().err
