"""Receive-side protocol semantics: dedup, expiry, quarantine, ack-after-apply.

The host is driven directly over a :class:`SimulatedNetwork` so each test
controls exactly which messages arrive, in which order, at which simulated
time — the unit-level complement of the end-to-end runs in
``test_simulation.py``.
"""

from __future__ import annotations

import pytest

from repro.core import ManagementServer
from repro.core.path import RouterPath
from repro.protocol import Beacon, BeaconAck, ProtocolManagementHost
from repro.sim.engine import Engine
from repro.sim.network import SimulatedNetwork

HOST = "mgmt"
TTL_MS = 100.0


def path_for(peer, access="a1"):
    return RouterPath.from_routers(peer, "lmA", [f"lmA-{access}", "lmA-core", "lmA"])


class Recorder:
    """Peer-side handler recording acks with their arrival times."""

    def __init__(self, engine):
        self.engine = engine
        self.received = []

    def handle_message(self, sender, message):
        self.received.append((self.engine.now, sender, message))


@pytest.fixture()
def plane(line_graph):
    """Engine, network, server and a started host, plus two peer endpoints."""
    engine = Engine()
    network = SimulatedNetwork(engine, line_graph, processing_delay_ms=0.0, seed=5)
    server = ManagementServer(neighbor_set_size=3)
    server.register_landmark("lmA", "lmA")
    host = ProtocolManagementHost(HOST, engine, network, server, ttl_ms=TTL_MS)
    network.attach_host(HOST, 0, host)
    senders = {}
    for peer_id, router in (("p0", 5), ("p1", 3)):
        recorder = Recorder(engine)
        network.attach_host(peer_id, router, recorder)
        senders[peer_id] = recorder
    return engine, network, server, host, senders


def beacon_from(network, peer_id, seq, path=None):
    path = path if path is not None else path_for(peer_id)
    network.send(peer_id, HOST, Beacon(peer_id=peer_id, seq=seq, path=path))


class TestRegistration:
    def test_first_beacon_registers_and_acks_after_apply(self, plane):
        engine, network, server, host, senders = plane
        beacon_from(network, "p0", 0)
        engine.run()
        assert server.has_peer("p0")
        assert host.is_live("p0")
        assert host.stats.beacons_registered == 1
        assert host.stats.acks_sent == 1
        [(_, sender, ack)] = senders["p0"].received
        assert sender == HOST
        assert ack == BeaconAck(peer_id="p0", seq=0)

    def test_duplicate_beacon_reacks_without_plane_work(self, plane):
        engine, network, server, host, senders = plane
        beacon_from(network, "p0", 0)
        engine.run()
        generation = server._cache.membership_generation
        heard_first = host.last_heard("p0")
        beacon_from(network, "p0", 0)  # wire duplicate / retransmit
        engine.run()
        assert host.stats.duplicate_beacons == 1
        assert host.stats.beacons_registered == 1
        assert server._cache.membership_generation == generation
        # Re-acked so the sender stops retransmitting...
        assert len(senders["p0"].received) == 2
        # ...and the retransmit of the *current* round still refreshes the TTL.
        assert host.last_heard("p0") > heard_first

    def test_same_path_reannounce_is_a_refresh_not_a_reregister(self, plane):
        engine, network, server, host, _senders = plane
        beacon_from(network, "p0", 0)
        engine.run()
        generation = server._cache.membership_generation
        beacon_from(network, "p0", 1)  # next round, same path
        engine.run()
        assert host.stats.beacons_refreshed == 1
        assert host.stats.beacons_registered == 1
        assert server._cache.membership_generation == generation

    def test_new_path_reregisters(self, plane):
        engine, network, server, host, _senders = plane
        beacon_from(network, "p0", 0)
        engine.run()
        beacon_from(network, "p0", 1, path=path_for("p0", access="a2"))
        engine.run()
        assert host.stats.beacons_registered == 2
        assert server.peer_path("p0") == path_for("p0", access="a2")

    def test_ack_skipped_for_a_sender_that_detached_in_flight(self, plane):
        engine, network, server, host, senders = plane
        beacon_from(network, "p0", 0)
        network.detach_host("p0")
        engine.run()
        # The beacon was already in flight, so it still registers; the ack
        # has nowhere to go and is skipped rather than crashing the host.
        assert server.has_peer("p0")
        assert host.stats.acks_sent == 0
        assert senders["p0"].received == []


class TestQuarantine:
    def test_malformed_message_bans_the_sender(self, plane):
        engine, network, server, host, _senders = plane
        network.send("p1", HOST, "garbage")
        engine.run()
        assert "p1" in host.banned
        assert host.stats.malformed_messages == 1
        assert host.stats.peers_banned == 1
        # Even well-formed beacons from a banned sender never reach the plane.
        beacon_from(network, "p1", 0)
        engine.run()
        assert host.stats.banned_beacons_dropped == 1
        assert host.stats.beacons_received == 0
        assert not server.has_peer("p1")

    def test_forged_peer_id_bans_and_evicts_the_sender(self, plane):
        engine, network, server, host, _senders = plane
        beacon_from(network, "p1", 0)  # legitimate registration first
        engine.run()
        assert server.has_peer("p1")
        # p1 claims to be p0: sender/peer_id mismatch.
        network.send("p1", HOST, Beacon(peer_id="p0", seq=0, path=path_for("p0")))
        engine.run()
        assert "p1" in host.banned
        assert not server.has_peer("p1")  # quarantine evicts registered state
        assert not server.has_peer("p0")  # the forged identity never lands

    def test_forged_path_owner_bans(self, plane):
        engine, network, server, host, _senders = plane
        # p1 announces its own id but a path recorded for p0.
        network.send("p1", HOST, Beacon(peer_id="p1", seq=0, path=path_for("p0")))
        engine.run()
        assert "p1" in host.banned
        assert not server.has_peer("p1")
        assert host.stats.beacons_received == 0  # never counted as protocol traffic


class TestExpiry:
    def test_silent_peer_expires_after_ttl(self, plane):
        engine, network, server, host, _senders = plane
        expired_log = []
        host.on_expire = lambda peer_id, now: expired_log.append((peer_id, now))
        host.start()
        beacon_from(network, "p0", 0)
        engine.run(until=TTL_MS * 3)  # silence after the single beacon
        assert not host.is_live("p0")
        assert not server.has_peer("p0")
        assert host.stats.peers_expired == 1
        assert expired_log and expired_log[0][0] == "p0"
        # The sweep lags the TTL by at most one sweep interval (ttl/4).
        heard_at = 5.0  # delivery latency from router 5 to router 0
        assert heard_at + TTL_MS < expired_log[0][1] <= heard_at + TTL_MS * 1.25 + 1

    def test_expired_peer_reregisters_cleanly_and_dedup_survives_expiry(self, plane):
        engine, network, server, host, _senders = plane
        host.start()
        beacon_from(network, "p0", 3)
        engine.run(until=TTL_MS * 3)
        assert not server.has_peer("p0")
        generation = server._cache.membership_generation
        # A late retransmit from before the outage must still be deduped —
        # expiry forgets liveness, not sequence numbers.
        beacon_from(network, "p0", 3)
        engine.run(until=TTL_MS * 3 + 20)
        assert host.stats.duplicate_beacons == 1
        assert not server.has_peer("p0")
        # Resumed beaconing (fresh round) re-registers cleanly.
        beacon_from(network, "p0", 4)
        engine.run(until=TTL_MS * 3 + 40)
        assert server.has_peer("p0")
        assert host.is_live("p0")
        assert host.stats.beacons_registered == 2
        assert server._cache.membership_generation > generation

    def test_live_peer_survives_sweeps_while_beaconing(self, plane):
        engine, network, server, host, _senders = plane
        host.start()
        for round_number in range(6):
            engine.schedule_at(
                round_number * (TTL_MS / 2.0),
                lambda seq=round_number: beacon_from(network, "p0", seq),
            )
        engine.run(until=TTL_MS * 3)
        assert host.is_live("p0")
        assert host.stats.peers_expired == 0

    def test_stop_cancels_the_sweep(self, plane):
        engine, _network, _server, host, _senders = plane
        host.start()
        host.stop()
        engine.run(until=TTL_MS * 10)
        assert engine.pending_events == 0


class TestValidation:
    def test_ttl_must_be_positive(self, plane):
        engine, network, server, _host, _senders = plane
        with pytest.raises(ValueError):
            ProtocolManagementHost(HOST, engine, network, server, ttl_ms=0.0)

    def test_sweep_interval_must_be_positive(self, plane):
        engine, network, server, _host, _senders = plane
        with pytest.raises(ValueError):
            ProtocolManagementHost(
                HOST, engine, network, server, ttl_ms=100.0, sweep_interval_ms=-1.0
            )
