"""Wire vocabulary: message validation, size model, fault-plan op names."""

from __future__ import annotations

import pytest

from repro.core.path import RouterPath
from repro.protocol import Beacon, BeaconAck, wire_size
from repro.sim.network import message_op_name


def path_for(peer="p0", routers=("lmA-a1", "lmA-core", "lmA")):
    return RouterPath.from_routers(peer, "lmA", list(routers))


class TestBeacon:
    def test_negative_sequence_rejected(self):
        with pytest.raises(ValueError):
            Beacon(peer_id="p0", seq=-1, path=path_for())

    def test_messages_are_frozen(self):
        beacon = Beacon(peer_id="p0", seq=0, path=path_for())
        with pytest.raises(Exception):
            beacon.seq = 1


class TestWireSize:
    def test_beacon_size_scales_with_hop_count(self):
        short = Beacon(peer_id="p0", seq=0, path=path_for())
        long = Beacon(
            peer_id="p0", seq=0, path=path_for(routers=("a", "b", "c", "d", "lmA"))
        )
        per_hop = (wire_size(long) - wire_size(short)) / (
            long.path.hop_count - short.path.hop_count
        )
        assert per_hop == 8  # one router id per hop
        assert wire_size(short) == 28 + 24 + 8 * short.path.hop_count

    def test_ack_size_is_fixed(self):
        assert wire_size(BeaconAck(peer_id="p0", seq=3)) == 28 + 12

    def test_non_protocol_messages_rejected(self):
        with pytest.raises(TypeError):
            wire_size("not a message")


class TestOpNames:
    def test_fault_plan_op_names_read_naturally(self):
        # NetworkFaultPlan op_name filters target these exact strings.
        assert message_op_name(Beacon(peer_id="p0", seq=0, path=path_for())) == "beacon"
        assert message_op_name(BeaconAck(peer_id="p0", seq=0)) == "beaconack"
