"""Send-side protocol semantics: rounds, retries, budgets, handovers.

The peer beacons at router 5 of the unit-latency line graph towards a
scripted host at router 0 (one-way latency 5 ms), so every timing
assertion below is exact simulated milliseconds.
"""

from __future__ import annotations

import pytest

from repro.core.path import RouterPath
from repro.protocol import Beacon, BeaconAck, BeaconConfig, BeaconingPeer
from repro.sim.engine import Engine
from repro.sim.network import SimulatedNetwork

HOST = "mgmt"

# Deterministic timing: no jitter, tight budget-relevant timeouts.
CONFIG = BeaconConfig(
    beacon_interval_ms=100.0,
    ack_timeout_ms=30.0,
    backoff_factor=2.0,
    max_backoff_ms=60.0,
    jitter_fraction=0.0,
)


def path_for(peer, access="a1"):
    return RouterPath.from_routers(peer, "lmA", [f"lmA-{access}", "lmA-core", "lmA"])


class AckingHost:
    """Scripted host side: records beacons, optionally acks each one."""

    def __init__(self, engine, network, ack=True):
        self.engine = engine
        self.network = network
        self.ack = ack
        self.beacons = []

    def handle_message(self, sender, message):
        self.beacons.append((self.engine.now, message))
        if self.ack and isinstance(message, Beacon):
            self.network.send(HOST, sender, BeaconAck(peer_id=sender, seq=message.seq))


def make_peer(line_graph, config=CONFIG, ack=True, seed=0, **network_kwargs):
    engine = Engine()
    network_kwargs.setdefault("processing_delay_ms", 0.0)
    network_kwargs.setdefault("seed", 2)
    network = SimulatedNetwork(engine, line_graph, **network_kwargs)
    host = AckingHost(engine, network, ack=ack)
    network.attach_host(HOST, 0, host)
    peer = BeaconingPeer(
        "p0", engine, network, HOST, path_for("p0"), config=config, seed=seed
    )
    network.attach_host("p0", 5, peer)
    return engine, network, host, peer


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beacon_interval_ms": 0.0},
            {"ack_timeout_ms": -1.0},
            {"backoff_factor": 0.5},
            {"ack_timeout_ms": 50.0, "max_backoff_ms": 20.0},
            {"jitter_fraction": 1.5},
            {"round_budget_ms": 0.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BeaconConfig(**kwargs)

    def test_budget_defaults_to_the_interval(self):
        assert BeaconConfig(beacon_interval_ms=250.0).budget_ms == 250.0
        assert BeaconConfig(round_budget_ms=80.0).budget_ms == 80.0


class TestIdentity:
    def test_peer_cannot_beacon_someone_elses_path(self, line_graph):
        engine = Engine()
        network = SimulatedNetwork(engine, line_graph, seed=2)
        with pytest.raises(ValueError):
            BeaconingPeer("p1", engine, network, HOST, path_for("p0"))

    def test_update_path_enforces_identity_too(self, line_graph):
        _engine, _network, _host, peer = make_peer(line_graph)
        with pytest.raises(ValueError):
            peer.update_path(path_for("p9"))

    def test_negative_initial_delay_rejected(self, line_graph):
        _engine, _network, _host, peer = make_peer(line_graph)
        with pytest.raises(ValueError):
            peer.start(initial_delay_ms=-1.0)


class TestRounds:
    def test_ack_closes_the_round_without_retransmitting(self, line_graph):
        engine, _network, host, peer = make_peer(line_graph)
        peer.start()
        engine.run(until=50.0)
        assert peer.stats.beacons_sent == 1
        assert peer.stats.retransmissions == 0
        assert peer.stats.acks_received == 1
        assert peer.stats.rounds_acked == 1
        # Beacon out at 0, heard at 5, ack back at 10: a 10 ms round trip.
        assert peer.stats.discovery_latency_ms == pytest.approx(10.0)
        assert [beacon.seq for _, beacon in host.beacons] == [0]
        assert peer.current_seq == 0

    def test_retransmits_with_backoff_until_the_budget_runs_out(self, line_graph):
        engine, _network, _host, peer = make_peer(line_graph, loss_probability=1.0)
        peer.start()
        # Attempts at t=0, 30, 90 (timeouts 30, 60); next timeout 60 is
        # clamped to the 10 ms left in the 100 ms round budget, and the
        # interval fires the next round at t=100 superseding round 0.
        engine.run(until=105.0)
        assert peer.stats.rounds_started == 2
        assert peer.stats.rounds_abandoned == 1
        assert peer.stats.acks_received == 0
        assert peer.stats.beacons_sent == 4  # 3 for round 0 + round 1's first
        assert peer.stats.retransmissions == 2

    def test_round_budget_caps_retries(self, line_graph):
        config = BeaconConfig(
            beacon_interval_ms=100.0,
            ack_timeout_ms=10.0,
            backoff_factor=2.0,
            max_backoff_ms=40.0,
            jitter_fraction=0.0,
            round_budget_ms=25.0,
        )
        engine, _network, _host, peer = make_peer(
            line_graph, config=config, loss_probability=1.0
        )
        peer.start()
        engine.run(until=95.0)
        # Attempts at t=0 and 10; the retry at t=25 finds the budget spent.
        assert peer.stats.beacons_sent == 2
        assert peer.stats.rounds_abandoned == 1

    def test_lossy_wire_timing_is_deterministic_per_seed(self, line_graph):
        def run_once():
            config = BeaconConfig(
                beacon_interval_ms=100.0,
                ack_timeout_ms=20.0,
                max_backoff_ms=60.0,
                jitter_fraction=0.3,
            )
            engine, network, _host, peer = make_peer(
                line_graph, config=config, seed=7, loss_probability=0.5
            )
            peer.start()
            engine.run(until=500.0)
            return peer.stats.beacons_sent, [r.sent_at for r in network.deliveries]

        assert run_once() == run_once()

    def test_stop_halts_beaconing(self, line_graph):
        engine, _network, _host, peer = make_peer(line_graph, loss_probability=1.0)
        peer.start()
        engine.run(until=95.0)
        sent = peer.stats.beacons_sent
        assert sent > 0
        peer.stop()
        engine.run(until=500.0)
        assert peer.stats.beacons_sent == sent
        assert not peer.running


class TestHandover:
    def test_update_path_beacons_immediately_with_a_fresh_seq(self, line_graph):
        engine, _network, host, peer = make_peer(line_graph)
        peer.start()
        engine.run(until=40.0)  # round 0 acked at t=10
        new_path = path_for("p0", access="a2")
        peer.update_path(new_path)
        engine.run(until=80.0)
        assert peer.stats.path_updates == 1
        seqs = [beacon.seq for _, beacon in host.beacons]
        assert seqs == [0, 1]  # the handover started a new round at once
        assert host.beacons[-1][1].path == new_path
        # Staleness sample: update at t=40, new-path ack heard at t=50.
        assert peer.stats.update_latencies_ms == [pytest.approx(10.0)]

    def test_superseded_round_is_abandoned_not_retried(self, line_graph):
        engine, _network, host, peer = make_peer(line_graph, ack=False)
        peer.start()
        engine.run(until=20.0)  # round 0 open, unacked
        peer.update_path(path_for("p0", access="a2"))
        engine.run(until=28.0)
        assert peer.stats.rounds_abandoned == 1
        assert peer.current_seq == 1


class TestDuplicateAcks:
    def test_duplicate_acks_are_counted_not_reapplied(self, line_graph):
        engine, _network, _host, peer = make_peer(line_graph, duplicate_probability=1.0)
        peer.start()
        engine.run(until=60.0)
        # Beacon duplicated -> host acks twice -> each ack duplicated: one
        # closes the round, three are recognised as duplicates.
        assert peer.stats.acks_received == 1
        assert peer.stats.duplicate_acks == 3
        assert peer.stats.rounds_acked == 1
