"""End-to-end protocol runs: the oracle, the acceptance bounds, the scripts.

These are the PR's acceptance tests: with a perfect wire the protocol's
view of the plane is byte-identical to driving the plane directly, and
with a scripted-lossy wire every live peer is still discovered within the
``k × beacon_interval + TTL`` bound while duplicates never double-register.
"""

from __future__ import annotations

import pytest

from repro.core import ManagementServer
from repro.core.chaos import Fault
from repro.core.path import RouterPath
from repro.perf.workloads import synthetic_paths
from repro.protocol import BeaconConfig, ProtocolSimulation
from repro.sim.network import NetworkFaultPlan


def reference_server(paths, neighbor_set_size=5):
    """The oracle: the same plane driven directly, no wire in between."""
    server = ManagementServer(neighbor_set_size=neighbor_set_size)
    for path in paths:
        if path.landmark_id not in server.landmarks():
            server.register_landmark(path.landmark_id, path.landmark_router)
    for path in paths:
        server.register_peer(path)
    return server


class TestZeroLossOracle:
    def test_protocol_converges_to_the_directly_driven_plane(self):
        paths = synthetic_paths(24, seed=3)
        sim = ProtocolSimulation(paths, seed=3)
        metrics = sim.run(3000.0)
        assert metrics.discovered_peers == metrics.live_peers == 24
        assert metrics.dropped_messages == 0
        assert metrics.retransmissions == 0
        assert sim.network.accounting_consistent()
        reference = reference_server(paths)
        for path in paths:
            assert sim.server.closest_peers(path.peer_id) == reference.closest_peers(
                path.peer_id
            ), path.peer_id

    def test_same_seed_same_report(self):
        def run_once():
            sim = ProtocolSimulation(
                synthetic_paths(12, seed=3),
                loss_probability=0.3,
                duplicate_probability=0.05,
                seed=11,
            )
            return sim.run(2000.0).as_dict()

        assert run_once() == run_once()


class TestLossyAcceptance:
    def test_every_live_peer_is_discovered_within_the_bound(self):
        interval = 250.0
        config = BeaconConfig(
            beacon_interval_ms=interval,
            ack_timeout_ms=40.0,
            max_backoff_ms=160.0,
        )
        sim = ProtocolSimulation(
            synthetic_paths(20, seed=3),
            beacon_config=config,
            loss_probability=0.3,
            duplicate_probability=0.05,
            reorder_probability=0.05,
            seed=7,
        )
        metrics = sim.run(4000.0)
        assert metrics.discovered_peers == 20
        assert metrics.live_peers == 20
        # Acceptance bound: first beacon -> first ack within
        # k x beacon_interval + TTL for every peer (k = 4 retained rounds).
        bound = 4 * interval + sim.ttl_ms
        for peer in sim.peers.values():
            assert peer.stats.discovery_latency_ms is not None
            assert peer.stats.discovery_latency_ms <= bound
        assert metrics.retransmissions > 0
        assert metrics.host_counters["duplicate_beacons"] > 0
        assert sim.network.accounting_consistent()

    def test_duplicated_beacons_never_double_register(self):
        sim = ProtocolSimulation(
            synthetic_paths(10, seed=3), duplicate_probability=1.0, seed=5
        )
        metrics = sim.run(1500.0)
        assert metrics.discovered_peers == 10
        assert metrics.duplicated_messages > 0
        # Every wire copy past the first of a (peer, seq) is deduped at the
        # host: exactly one registration per peer, ever.
        assert metrics.host_counters["beacons_registered"] == 10
        assert metrics.host_counters["duplicate_beacons"] > 0
        assert sim.server.peer_count == 10

    def test_scripted_partition_heals_and_everyone_is_discovered(self):
        plan = NetworkFaultPlan.of(
            Fault(at_op=4, kind="partition", window_ops=15, op_name="beacon")
        )
        sim = ProtocolSimulation(
            synthetic_paths(12, seed=3), fault_plan=plan, seed=9
        )
        metrics = sim.run(3000.0)
        assert metrics.discovered_peers == 12
        assert metrics.dropped_messages >= 8
        assert metrics.retransmissions > 0
        assert plan.fired  # the partition actually bit


class TestScripts:
    def test_scheduled_stop_expires_the_peer(self):
        paths = synthetic_paths(6, seed=3)
        sim = ProtocolSimulation(paths, seed=2)
        sim.schedule_stop(paths[0].peer_id, at_ms=1500.0)
        metrics = sim.run(3000.0 + 3 * sim.ttl_ms)
        assert metrics.live_peers == 5
        assert metrics.host_counters["peers_expired"] == 1
        assert not sim.server.has_peer(paths[0].peer_id)

    def test_mobility_handover_updates_the_plane_and_the_wire(self):
        paths = synthetic_paths(8, seed=3)
        mover, donor = paths[0], paths[4]
        new_path = RouterPath.from_routers(
            mover.peer_id, donor.landmark_id, donor.routers, rtt_ms=donor.rtt_ms
        )
        sim = ProtocolSimulation(paths, seed=4)
        sim.schedule_path_update(mover.peer_id, at_ms=2000.0, path=new_path)
        metrics = sim.run(4000.0)
        peer = sim.peers[mover.peer_id]
        assert peer.stats.path_updates == 1
        assert len(peer.stats.update_latencies_ms) == 1  # staleness sample
        assert metrics.staleness is not None
        assert sim.network.router_of(mover.peer_id) == new_path.access_router
        assert sim.server.peer_path(mover.peer_id) == new_path

    def test_validation(self):
        paths = synthetic_paths(3, seed=3)
        with pytest.raises(ValueError):
            ProtocolSimulation([])
        with pytest.raises(ValueError):
            ProtocolSimulation(paths, start_times_ms=[0.0])
        with pytest.raises(ValueError):
            ProtocolSimulation(paths).run(0.0)
