"""Property-test oracle: the vectorised engine vs the reference BFS/Dijkstra.

The engine's correctness claim is exact equivalence, not approximation:
for every source in any graph — connected or not — the engine's hop
distances, BFS trees and batched Dijkstra must equal
:func:`bfs_shortest_paths` / :func:`dijkstra_shortest_paths`, and the
rewired public APIs must keep their exception semantics
(:class:`NoRouteError` for unreachable pairs, :class:`NodeNotFoundError`
for unknown sources).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NoRouteError, NodeNotFoundError
from repro.routing.distance_engine import (
    MAX_BYTE_HOPS,
    CsrTopology,
    HopDistanceEngine,
)
from repro.routing.shortest_path import (
    AllPairsHopDistances,
    bfs_shortest_paths,
    dijkstra_shortest_paths,
    shortest_path_tree,
)
from repro.topology.graph import Graph


def _graph_from(edges, isolated, weights=None):
    """Build a graph from hypothesis-drawn edges plus isolated nodes.

    Isolated nodes make the graph *disconnected* in most draws, which is
    exactly the regime where unreachable-node handling must match.
    """
    graph = Graph()
    for node in isolated:
        graph.add_node(node)
    for index, (u, v) in enumerate(edges):
        attrs = {}
        if weights is not None:
            attrs["latency"] = weights[index % len(weights)]
        graph.add_edge(u, v, **attrs)
    return graph


edges_strategy = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(lambda e: e[0] != e[1]),
    min_size=0,
    max_size=40,
)
isolated_strategy = st.lists(st.integers(16, 20), min_size=0, max_size=4, unique=True)
weights_strategy = st.lists(
    st.floats(min_value=0.125, max_value=16.0, allow_nan=False), min_size=1, max_size=8
)


class TestHopOracle:
    @settings(max_examples=120, deadline=None)
    @given(edges=edges_strategy, isolated=isolated_strategy)
    def test_hop_distances_equal_reference_for_every_source(self, edges, isolated):
        graph = _graph_from(edges, isolated)
        if graph.node_count == 0:
            return
        engine = HopDistanceEngine(graph)
        for source in graph.nodes():
            expected, _ = bfs_shortest_paths(graph, source)
            assert engine.hop_distances(source) == expected

    @settings(max_examples=80, deadline=None)
    @given(edges=edges_strategy, isolated=isolated_strategy)
    def test_bfs_tree_is_identical_including_parents_and_order(self, edges, isolated):
        graph = _graph_from(edges, isolated)
        if graph.node_count == 0:
            return
        engine = HopDistanceEngine(graph)
        for source in graph.nodes():
            ref_distances, ref_parents = bfs_shortest_paths(graph, source)
            distances, parents = engine.bfs(source)
            assert distances == ref_distances
            assert parents == ref_parents
            # Not just equal: tie-breaking (and hence dict insertion order)
            # must match, because routed paths replay these parents.
            assert list(distances) == list(ref_distances)
            assert list(parents) == list(ref_parents)

    @settings(max_examples=80, deadline=None)
    @given(edges=edges_strategy, isolated=isolated_strategy)
    def test_all_pairs_view_keeps_no_route_semantics(self, edges, isolated):
        graph = _graph_from(edges, isolated)
        if graph.node_count == 0:
            return
        oracle = AllPairsHopDistances(graph)
        nodes = list(graph.nodes())
        source = nodes[0]
        expected, _ = bfs_shortest_paths(graph, source)
        assert oracle.distances_from(source) == expected
        for destination in nodes:
            if destination in expected:
                assert oracle.distance(source, destination) == expected[destination]
            else:
                with pytest.raises(NoRouteError):
                    oracle.distance(source, destination)


class TestLatencyOracle:
    @settings(max_examples=80, deadline=None)
    @given(edges=edges_strategy, isolated=isolated_strategy, weights=weights_strategy)
    def test_dijkstra_is_bit_identical_for_every_source(self, edges, isolated, weights):
        graph = _graph_from(edges, isolated, weights=weights)
        if graph.node_count == 0:
            return
        engine = HopDistanceEngine(graph)
        for source in graph.nodes():
            ref_distances, ref_parents = dijkstra_shortest_paths(graph, source)
            distances, parents = engine.dijkstra(source)
            # Plain ==, no approx: the engine mirrors the reference's float
            # addition order and tie-breaking, so values are bit-identical.
            assert distances == ref_distances
            assert parents == ref_parents
            assert engine.latency_distances(source) == ref_distances

    @settings(max_examples=40, deadline=None)
    @given(edges=edges_strategy, isolated=isolated_strategy, weights=weights_strategy)
    def test_weighted_tree_matches_reference(self, edges, isolated, weights):
        graph = _graph_from(edges, isolated, weights=weights)
        if graph.node_count == 0:
            return
        engine = HopDistanceEngine(graph)
        root = next(iter(graph.nodes()))
        reference = shortest_path_tree(graph, root, weighted=True)
        tree = engine.tree(root, weighted=True)
        assert tree.distances == reference.distances
        assert tree.parents == reference.parents
        assert tree.root == reference.root and tree.weighted
        # The one-shot entry point delegates to the same engine result.
        delegated = shortest_path_tree(graph, root, weighted=True, engine=engine)
        assert delegated.distances == reference.distances
        assert delegated.parents == reference.parents

    def test_shortest_path_tree_rejects_mismatched_engine(self):
        graph = Graph()
        graph.add_edge(1, 2)
        other = Graph()
        other.add_edge(1, 2)
        with pytest.raises(ValueError):
            shortest_path_tree(graph, 1, engine=HopDistanceEngine(other))

    def test_injection_points_reject_mismatched_engine(self):
        graph = Graph()
        graph.add_edge(1, 2)
        other = Graph()
        other.add_edge(1, 2)
        wrong = HopDistanceEngine(other)
        with pytest.raises(ValueError):
            AllPairsHopDistances(graph, engine=wrong)
        from repro.routing.route_table import RouteTable

        with pytest.raises(ValueError):
            RouteTable(graph=graph, engine=wrong)

    def test_warm_counts_distinct_sources(self):
        graph = Graph()
        graph.add_edge("a", "b", latency=1.0)
        engine = HopDistanceEngine(graph)
        assert engine.warm_hops(["a", "a", "b"]) == 2
        assert engine.warm_latencies(["a", "a"]) == 1

    def test_warm_latencies_batches_and_caches(self):
        graph = Graph()
        graph.add_edge("a", "b", latency=2.0)
        graph.add_edge("b", "c", latency=3.0)
        engine = HopDistanceEngine(graph)
        assert engine.warm_latencies(["a", "b"]) == 2
        assert engine.stats.dijkstra_runs == 2
        # Warm sources answer from the cache, with reference-equal values.
        assert engine.latency_distances("a") == dijkstra_shortest_paths(graph, "a")[0]
        assert engine.stats.dijkstra_runs == 2
        assert engine.stats.vector_cache_hits > 0


class TestEdgeCases:
    def test_unknown_source_raises_node_not_found(self):
        graph = Graph()
        graph.add_edge(1, 2)
        engine = HopDistanceEngine(graph)
        with pytest.raises(NodeNotFoundError):
            engine.hop_distances("nope")
        with pytest.raises(NodeNotFoundError):
            engine.dijkstra("nope")

    def test_unknown_destination_counts_as_unreachable(self):
        graph = Graph()
        graph.add_edge(1, 2)
        engine = HopDistanceEngine(graph)
        assert engine.hop_between(1, "nope") is None
        assert engine.hop_between(1, "nope", default=7) == 7
        with pytest.raises(NoRouteError):
            engine.hop_distance(1, "nope")

    def test_single_node_and_empty_components(self):
        graph = Graph()
        graph.add_node("solo")
        engine = HopDistanceEngine(graph)
        assert engine.hop_distances("solo") == {"solo": 0}
        assert engine.latency_distances("solo") == {"solo": 0.0}

    def test_mutually_attached_degree_one_pair(self):
        """A K2 component: neither endpoint is a derivable leaf."""
        graph = Graph()
        graph.add_edge("a", "b")
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        engine = HopDistanceEngine(graph)
        for source in graph.nodes():
            expected, _ = bfs_shortest_paths(graph, source)
            assert engine.hop_distances(source) == expected

    def test_eccentricity_exactly_at_byte_cap_stays_on_byte_path(self):
        """A ring whose farthest node sits at exactly MAX_BYTE_HOPS must not
        spuriously fall back to the wide BFS."""
        graph = Graph()
        length = 2 * MAX_BYTE_HOPS + 1  # odd ring: eccentricity == MAX_BYTE_HOPS
        for i in range(length):
            graph.add_edge(i, (i + 1) % length)
        engine = HopDistanceEngine(graph)
        expected, _ = bfs_shortest_paths(graph, 0)
        assert max(expected.values()) == MAX_BYTE_HOPS
        assert engine.hop_distances(0) == expected
        assert engine.stats.wide_bfs_runs == 0

    def test_eccentricity_one_past_byte_cap_goes_wide(self):
        graph = Graph()
        length = 2 * MAX_BYTE_HOPS + 3  # odd ring: eccentricity == MAX_BYTE_HOPS + 1
        for i in range(length):
            graph.add_edge(i, (i + 1) % length)
        engine = HopDistanceEngine(graph)
        expected, _ = bfs_shortest_paths(graph, 0)
        assert max(expected.values()) == MAX_BYTE_HOPS + 1
        assert engine.hop_distances(0) == expected
        assert engine.stats.wide_bfs_runs == 1

    def test_deep_chain_falls_back_to_wide_vectors(self):
        """Paths longer than MAX_BYTE_HOPS must stay exact via the wide path."""
        graph = Graph()
        length = MAX_BYTE_HOPS + 40
        for i in range(length):
            graph.add_edge(i, i + 1)
        graph.add_node("island")
        engine = HopDistanceEngine(graph)
        for source in (0, length // 2, length):
            expected, _ = bfs_shortest_paths(graph, source)
            assert engine.hop_distances(source) == expected
        assert engine.stats.wide_bfs_runs > 0
        assert engine.hop_between(0, "island") is None

    def test_leaf_sources_are_derived_not_researched(self):
        graph = Graph()
        for leaf in range(1, 6):
            graph.add_edge("hub", f"leaf{leaf}")
        engine = HopDistanceEngine(graph)
        engine.warm_hops(f"leaf{leaf}" for leaf in range(1, 6))
        assert engine.stats.bfs_runs == 1  # the hub, shared by all leaves
        assert engine.stats.derived_vectors == 5
        for leaf in range(1, 6):
            expected, _ = bfs_shortest_paths(graph, f"leaf{leaf}")
            assert engine.hop_distances(f"leaf{leaf}") == expected


class TestGenerationCounter:
    def test_graph_mutations_bump_generation(self):
        graph = Graph()
        generation = graph.generation
        graph.add_node("a")
        assert graph.generation > generation
        generation = graph.generation
        graph.add_node("a")  # idempotent re-add: no structural change
        assert graph.generation == generation
        graph.add_edge("a", "b")
        assert graph.generation > generation
        generation = graph.generation
        graph.set_edge_attribute("a", "b", "latency", 3.0)
        assert graph.generation > generation
        generation = graph.generation
        graph.remove_edge("a", "b")
        assert graph.generation > generation
        generation = graph.generation
        graph.remove_node("b")
        assert graph.generation > generation

    def test_snapshot_invalidates_and_rebuilds_on_mutation(self):
        graph = Graph()
        graph.add_edge("a", "b")
        engine = HopDistanceEngine(graph)
        assert engine.hop_distance("a", "b") == 1
        first = engine.snapshot()
        assert engine.snapshot() is first  # stable while the graph is
        graph.add_edge("b", "c")
        assert engine.hop_distance("a", "c") == 2
        second = engine.snapshot()
        assert second is not first
        assert engine.stats.snapshot_builds == 2

    def test_weight_change_invalidates_latency_vectors(self):
        graph = Graph()
        graph.add_edge("a", "b", latency=1.0)
        graph.add_edge("b", "c", latency=1.0)
        engine = HopDistanceEngine(graph)
        assert engine.latency_distance("a", "c") == pytest.approx(2.0)
        graph.set_edge_attribute("b", "c", "latency", 5.0)
        assert engine.latency_distance("a", "c") == pytest.approx(6.0)

    def test_all_pairs_view_drops_dict_cache_on_mutation(self):
        graph = Graph()
        graph.add_edge("a", "b")
        oracle = AllPairsHopDistances(graph)
        assert oracle.distance("a", "b") == 1
        assert oracle.cached_sources == 1
        graph.add_edge("b", "c")
        assert oracle.distance("a", "c") == 2

    def test_snapshot_is_current_reflects_generation(self):
        graph = Graph()
        graph.add_edge(1, 2)
        snapshot = CsrTopology(graph)
        assert snapshot.is_current()
        graph.add_edge(2, 3)
        assert not snapshot.is_current()
