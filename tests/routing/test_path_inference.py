"""Tests for traceroute cleaning and path comparison helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import TracerouteError
from repro.routing.path_inference import (
    GAP_DROP,
    GAP_PLACEHOLDER,
    GAP_TRUNCATE,
    assess_paths,
    branch_router,
    clean_traceroute,
    common_prefix_length,
)
from repro.routing.traceroute import TracerouteHop, TracerouteResult


def make_result(routers, reached=True, source="p", destination="lmk"):
    hops = [
        TracerouteHop(ttl=i + 1, router=router, rtt_ms=None if router is None else float(i + 1))
        for i, router in enumerate(routers)
    ]
    return TracerouteResult(source=source, destination=destination, hops=hops, reached=reached)


class TestCleaning:
    def test_perfect_trace_is_complete(self):
        cleaned = clean_traceroute(make_result(["r1", "r2", "lmk"]))
        assert cleaned.routers == ["r1", "r2", "lmk"]
        assert cleaned.complete
        assert cleaned.length == 3

    def test_drop_policy_removes_gaps(self):
        cleaned = clean_traceroute(make_result(["r1", None, "lmk"]), gap_policy=GAP_DROP)
        assert cleaned.routers == ["r1", "lmk"]
        assert cleaned.anonymous_hops == 1
        assert not cleaned.complete

    def test_placeholder_policy_keeps_hop_count(self):
        cleaned = clean_traceroute(make_result(["r1", None, "lmk"]), gap_policy=GAP_PLACEHOLDER)
        assert len(cleaned.routers) == 3
        assert cleaned.routers[1].startswith("anon:")

    def test_placeholders_are_unique_per_source(self):
        cleaned_a = clean_traceroute(
            make_result(["r1", None, "lmk"], source="p1"), gap_policy=GAP_PLACEHOLDER
        )
        cleaned_b = clean_traceroute(
            make_result(["r1", None, "lmk"], source="p2"), gap_policy=GAP_PLACEHOLDER
        )
        assert cleaned_a.routers[1] != cleaned_b.routers[1]

    def test_truncate_policy_stops_at_first_gap(self):
        cleaned = clean_traceroute(make_result(["r1", None, "lmk"]), gap_policy=GAP_TRUNCATE)
        assert cleaned.routers == ["r1"]
        assert cleaned.truncated

    def test_unreached_trace_raises_by_default(self):
        with pytest.raises(TracerouteError):
            clean_traceroute(make_result(["r1", "r2"], reached=False))

    def test_unreached_trace_allowed_when_requested(self):
        cleaned = clean_traceroute(make_result(["r1", "r2"], reached=False), require_reached=False)
        assert cleaned.truncated

    def test_unknown_gap_policy_rejected(self):
        with pytest.raises(Exception):
            clean_traceroute(make_result(["r1", "lmk"]), gap_policy="interpolate")


class TestAssessment:
    def test_quality_report(self):
        cleaned = [
            clean_traceroute(make_result(["r1", "r2", "lmk"])),
            clean_traceroute(make_result(["r1", None, "lmk"])),
            clean_traceroute(make_result(["r9"], reached=False), require_reached=False),
        ]
        report = assess_paths(cleaned)
        assert report.total_paths == 3
        assert report.complete_paths == 1
        assert report.truncated_paths == 1
        assert report.total_anonymous_hops == 1
        assert report.completeness == pytest.approx(1 / 3)
        assert report.mean_length > 0

    def test_empty_report(self):
        report = assess_paths([])
        assert report.total_paths == 0
        assert report.completeness == 0.0
        assert report.mean_length == 0.0


class TestPathComparison:
    def test_common_prefix_length_counts_landmark_side_overlap(self):
        path_a = ["a1", "a2", "core", "lmk"]
        path_b = ["b1", "core", "lmk"]
        assert common_prefix_length(path_a, path_b) == 2

    def test_disjoint_paths_share_nothing(self):
        assert common_prefix_length(["a", "b"], ["c", "d"]) == 0
        assert branch_router(["a", "b"], ["c", "d"]) is None

    def test_branch_router_is_closest_shared_router(self):
        path_a = ["a1", "a2", "core", "lmk"]
        path_b = ["b1", "core", "lmk"]
        assert branch_router(path_a, path_b) == "core"

    def test_identical_paths_branch_at_first_router(self):
        path = ["r1", "r2", "lmk"]
        assert branch_router(path, list(path)) == "r1"
        assert common_prefix_length(path, path) == 3
