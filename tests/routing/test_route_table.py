"""Tests for per-router forwarding state (RouteTable)."""

from __future__ import annotations

import pytest

from repro.exceptions import NoRouteError, RoutingError
from repro.routing.route_table import RouteTable, build_route_table
from repro.topology.graph import Graph


class TestRouteTable:
    def test_add_destination_caches_tree(self, tree_graph):
        table = RouteTable(graph=tree_graph)
        tree_first = table.add_destination(0)
        tree_second = table.add_destination(0)
        assert tree_first is tree_second
        assert table.destinations() == [0]
        assert table.has_destination(0)

    def test_tree_requires_prior_destination(self, tree_graph):
        table = RouteTable(graph=tree_graph)
        with pytest.raises(RoutingError):
            table.tree(0)

    def test_next_hop_follows_shortest_path(self, tree_graph):
        table = build_route_table(tree_graph, destinations=[0])
        assert table.next_hop(7, 0) == 3
        assert table.next_hop(3, 0) == 1
        assert table.next_hop(1, 0) == 0

    def test_next_hop_at_destination_raises(self, tree_graph):
        table = build_route_table(tree_graph, destinations=[0])
        with pytest.raises(RoutingError):
            table.next_hop(0, 0)

    def test_next_hop_unreachable(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_node(3)
        table = build_route_table(graph, destinations=[1])
        with pytest.raises(NoRouteError):
            table.next_hop(3, 1)

    def test_route_endpoints_and_length(self, tree_graph):
        table = RouteTable(graph=tree_graph)
        route = table.route(7, 6)
        assert route[0] == 7
        assert route[-1] == 6
        assert table.route_length(7, 6) == len(route) - 1

    def test_route_to_self(self, tree_graph):
        table = RouteTable(graph=tree_graph)
        assert table.route(4, 4) == [4]
        assert table.route_length(4, 4) == 0

    def test_path_latency_sums_edge_weights(self):
        graph = Graph()
        graph.add_edge(1, 2, latency=2.0)
        graph.add_edge(2, 3, latency=3.0)
        table = RouteTable(graph=graph)
        assert table.path_latency(1, 3) == pytest.approx(5.0)

    def test_weighted_table_prefers_fast_links(self):
        graph = Graph()
        graph.add_edge(0, 1, latency=1.0)
        graph.add_edge(1, 2, latency=1.0)
        graph.add_edge(0, 2, latency=10.0)
        hop_table = RouteTable(graph=graph, weighted=False)
        latency_table = RouteTable(graph=graph, weighted=True)
        assert hop_table.route(0, 2) == [0, 2]
        assert latency_table.route(0, 2) == [0, 1, 2]

    def test_build_route_table_without_destinations(self, tree_graph):
        table = build_route_table(tree_graph)
        assert table.destinations() == []
