"""Tests for BFS/Dijkstra shortest paths and the all-pairs oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NoRouteError, NodeNotFoundError
from repro.routing.shortest_path import (
    AllPairsHopDistances,
    bfs_shortest_paths,
    dijkstra_shortest_paths,
    hop_distance,
    latency_distance,
    reconstruct_path,
    shortest_path_tree,
)
from repro.topology.graph import Graph


@pytest.fixture()
def weighted_square() -> Graph:
    """A square with one heavy edge: 0-1-2 is shorter by latency than 0-3-2."""
    graph = Graph()
    graph.add_edge(0, 1, latency=1.0)
    graph.add_edge(1, 2, latency=1.0)
    graph.add_edge(0, 3, latency=1.0)
    graph.add_edge(3, 2, latency=10.0)
    return graph


class TestBfs:
    def test_distances_on_tree(self, tree_graph):
        distances, parents = bfs_shortest_paths(tree_graph, 0)
        assert distances[0] == 0
        assert distances[7] == 3
        assert parents[7] == 3
        assert parents[3] == 1

    def test_unknown_source(self, tree_graph):
        with pytest.raises(NodeNotFoundError):
            bfs_shortest_paths(tree_graph, "nope")

    def test_unreachable_node_absent(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_node(3)
        distances, _ = bfs_shortest_paths(graph, 1)
        assert 3 not in distances

    def test_hop_distance(self, line_graph):
        assert hop_distance(line_graph, 0, 5) == 5
        assert hop_distance(line_graph, 3, 3) == 0

    def test_hop_distance_no_route(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_node(3)
        with pytest.raises(NoRouteError):
            hop_distance(graph, 1, 3)


class TestDijkstra:
    def test_prefers_low_latency_path(self, weighted_square):
        distances, parents = dijkstra_shortest_paths(weighted_square, 0)
        assert distances[2] == pytest.approx(2.0)
        assert reconstruct_path(parents, 0, 2) == [0, 1, 2]

    def test_latency_distance(self, weighted_square):
        assert latency_distance(weighted_square, 0, 2) == pytest.approx(2.0)
        assert latency_distance(weighted_square, 3, 3) == 0.0

    def test_missing_weights_default_to_one(self):
        graph = Graph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        assert latency_distance(graph, "a", "c") == pytest.approx(2.0)

    def test_no_route(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_node(3)
        with pytest.raises(NoRouteError):
            latency_distance(graph, 1, 3)


class TestReconstruct:
    def test_same_source_destination(self):
        assert reconstruct_path({}, 5, 5) == [5]

    def test_missing_destination_raises(self):
        with pytest.raises(NoRouteError):
            reconstruct_path({}, 1, 2)

    def test_path_endpoints(self, tree_graph):
        distances, parents = bfs_shortest_paths(tree_graph, 7)
        path = reconstruct_path(parents, 7, 6)
        assert path[0] == 7
        assert path[-1] == 6
        assert len(path) - 1 == distances[6]


class TestShortestPathTree:
    def test_hop_tree_path_to_root(self, tree_graph):
        tree = shortest_path_tree(tree_graph, 0)
        assert tree.path_to_root(8) == [8, 4, 1, 0]
        assert tree.distance(8) == 3

    def test_weighted_tree_uses_latency(self, weighted_square):
        tree = shortest_path_tree(weighted_square, 2, weighted=True)
        assert tree.path_to_root(0) == [0, 1, 2]
        assert tree.distance(0) == pytest.approx(2.0)
        assert tree.weighted

    def test_root_path_is_trivial(self, tree_graph):
        tree = shortest_path_tree(tree_graph, 0)
        assert tree.path_to_root(0) == [0]
        assert tree.covers(0)

    def test_uncovered_node(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_node(3)
        tree = shortest_path_tree(graph, 1)
        assert not tree.covers(3)
        with pytest.raises(NoRouteError):
            tree.path_to_root(3)


class TestAllPairsOracle:
    def test_distance_matches_direct_bfs(self, tree_graph):
        oracle = AllPairsHopDistances(tree_graph)
        assert oracle.distance(7, 8) == hop_distance(tree_graph, 7, 8)
        assert oracle.distance(7, 6) == 5

    def test_caching_by_source(self, tree_graph):
        oracle = AllPairsHopDistances(tree_graph)
        oracle.distance(7, 8)
        oracle.distance(7, 6)
        assert oracle.cached_sources == 1
        oracle.warm([0, 1])
        assert oracle.cached_sources == 3
        oracle.clear()
        assert oracle.cached_sources == 0

    def test_no_route_raises(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_node(3)
        oracle = AllPairsHopDistances(graph)
        with pytest.raises(NoRouteError):
            oracle.distance(1, 3)


@settings(max_examples=20, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 10)).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=30,
    )
)
def test_property_bfs_distances_satisfy_triangle_inequality_on_edges(edges):
    """For every edge (u, v), |dist(s,u) - dist(s,v)| <= 1."""
    graph = Graph()
    for u, v in edges:
        graph.add_edge(u, v)
    source = next(iter(graph.nodes()))
    distances, _ = bfs_shortest_paths(graph, source)
    for u, v in graph.edges():
        if u in distances and v in distances:
            assert abs(distances[u] - distances[v]) <= 1


@settings(max_examples=20, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 10)).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=30,
    )
)
def test_property_hop_distance_lower_bounds_latency_path_hops(edges):
    """A weighted shortest path can never use fewer hops than the BFS distance."""
    graph = Graph()
    for u, v in edges:
        graph.add_edge(u, v, latency=1.0)
    nodes = list(graph.nodes())
    source = nodes[0]
    hop, _ = bfs_shortest_paths(graph, source)
    weighted, parents = dijkstra_shortest_paths(graph, source)
    for node in weighted:
        path = reconstruct_path(parents, source, node) if node != source else [source]
        assert len(path) - 1 >= hop[node]
