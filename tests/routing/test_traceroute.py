"""Tests for the simulated traceroute tool."""

from __future__ import annotations

import pytest

from repro.routing.route_table import RouteTable
from repro.routing.traceroute import TracerouteConfig, TracerouteSimulator
from repro.topology.graph import Graph


@pytest.fixture()
def simulator(tree_graph) -> TracerouteSimulator:
    return TracerouteSimulator(graph=tree_graph, route_table=RouteTable(graph=tree_graph))


class TestPerfectTool:
    def test_records_routed_path(self, simulator):
        result = simulator.trace(7, 0)
        assert result.reached
        assert result.responding_routers() == [3, 1, 0]
        assert result.hop_count == 3

    def test_hops_have_increasing_rtt(self, simulator):
        result = simulator.trace(7, 0)
        rtts = [hop.rtt_ms for hop in result.hops]
        assert all(later >= earlier for earlier, later in zip(rtts, rtts[1:]))

    def test_trace_to_self_is_empty_and_reached(self, simulator):
        result = simulator.trace(4, 4)
        assert result.reached
        assert result.hops == []
        assert result.destination_rtt_ms() is None

    def test_trace_many(self, simulator):
        results = simulator.trace_many(7, [0, 6])
        assert len(results) == 2
        assert all(result.reached for result in results)

    def test_destination_rtt_positive(self, simulator):
        result = simulator.trace(8, 6)
        assert result.destination_rtt_ms() > 0


class TestImperfections:
    def test_max_ttl_truncates(self, line_graph):
        simulator = TracerouteSimulator(
            graph=line_graph, config=TracerouteConfig(max_ttl=2)
        )
        result = simulator.trace(0, 5)
        assert not result.reached
        assert result.hop_count == 2

    def test_anonymous_routers_leave_gaps(self, line_graph):
        simulator = TracerouteSimulator(
            graph=line_graph,
            config=TracerouteConfig(anonymous_router_probability=1.0, seed=1),
        )
        result = simulator.trace(0, 5)
        # All intermediate hops are anonymous; the destination still answers.
        assert result.reached
        intermediate = result.raw_routers()[:-1]
        assert all(router is None for router in intermediate)
        assert result.raw_routers()[-1] == 5

    def test_anonymity_is_sticky_per_router(self, line_graph):
        simulator = TracerouteSimulator(
            graph=line_graph,
            config=TracerouteConfig(anonymous_router_probability=0.5, seed=3),
        )
        first = simulator.trace(0, 5).raw_routers()
        second = simulator.trace(0, 5).raw_routers()
        assert first == second

    def test_probe_loss_with_retries_usually_succeeds(self, line_graph):
        simulator = TracerouteSimulator(
            graph=line_graph,
            config=TracerouteConfig(probe_loss_probability=0.3, probes_per_hop=5, seed=7),
        )
        result = simulator.trace(0, 5)
        assert result.reached
        # With 5 retries at 30% loss nearly every hop should answer.
        responding = sum(1 for router in result.raw_routers() if router is not None)
        assert responding >= 4

    def test_total_probe_loss_marks_all_hops_anonymous(self, line_graph):
        simulator = TracerouteSimulator(
            graph=line_graph,
            config=TracerouteConfig(probe_loss_probability=1.0, probes_per_hop=2, seed=9),
        )
        result = simulator.trace(0, 5)
        assert result.reached  # the destination always answers
        assert all(router is None for router in result.raw_routers()[:-1])

    def test_invalid_config_rejected(self):
        with pytest.raises(Exception):
            TracerouteConfig(probe_loss_probability=1.5)
        with pytest.raises(Exception):
            TracerouteConfig(max_ttl=0)


class TestDeterminism:
    def test_same_seed_same_results(self, line_graph):
        config = TracerouteConfig(anonymous_router_probability=0.3, seed=11)
        first = TracerouteSimulator(graph=line_graph, config=config).trace(0, 5)
        second = TracerouteSimulator(
            graph=line_graph, config=TracerouteConfig(anonymous_router_probability=0.3, seed=11)
        ).trace(0, 5)
        assert first.raw_routers() == second.raw_routers()
