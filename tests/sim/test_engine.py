"""Tests for the discrete-event engine and its events."""

from __future__ import annotations

import pytest

from repro.exceptions import ClockError, SimulationError
from repro.sim.engine import Engine
from repro.sim.events import Event, TimerHandle


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(5.0, lambda: fired.append("late"))
        engine.schedule(1.0, lambda: fired.append("early"))
        engine.schedule(3.0, lambda: fired.append("middle"))
        engine.run()
        assert fired == ["early", "middle", "late"]
        assert engine.now == 5.0

    def test_simultaneous_events_fire_in_scheduling_order(self):
        engine = Engine()
        fired = []
        for label in ("a", "b", "c"):
            engine.schedule(2.0, lambda label=label: fired.append(label))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_schedule_at_absolute_time(self):
        engine = Engine()
        fired = []
        engine.schedule_at(10.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [10.0]

    def test_schedule_in_the_past_rejected(self):
        engine = Engine()
        engine.schedule(1.0, lambda: engine.schedule_at(0.5, lambda: None))
        with pytest.raises(ClockError):
            engine.run()

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(Exception):
            engine.schedule(-1.0, lambda: None)

    def test_events_can_schedule_more_events(self):
        engine = Engine()
        fired = []

        def first():
            fired.append("first")
            engine.schedule(1.0, lambda: fired.append("chained"))

        engine.schedule(1.0, first)
        engine.run()
        assert fired == ["first", "chained"]
        assert engine.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        engine.run()
        assert fired == []
        assert handle.cancelled

    def test_timer_handle_reports_time(self):
        engine = Engine()
        handle = engine.schedule(4.0, lambda: None)
        assert isinstance(handle, TimerHandle)
        assert handle.time == 4.0


class TestRunControl:
    def test_run_until_stops_the_clock(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(10))
        processed = engine.run(until=5.0)
        assert processed == 1
        assert fired == [1]
        assert engine.now == 5.0
        engine.run()
        assert fired == [1, 10]

    def test_run_max_events(self):
        engine = Engine()
        for i in range(5):
            engine.schedule(float(i + 1), lambda: None)
        assert engine.run(max_events=3) == 3
        assert engine.pending_events == 2

    def test_stop_from_within_event(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: (fired.append(1), engine.stop()))
        engine.schedule(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1]
        engine.run()
        assert fired == [1, 2]

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_reset(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        engine.schedule(1.0, lambda: None)
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending_events == 0

    def test_processed_events_counter(self):
        engine = Engine()
        for _ in range(4):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.processed_events == 4

    def test_peek_next_time(self):
        engine = Engine()
        assert engine.peek_next_time() is None
        handle = engine.schedule(3.0, lambda: None)
        engine.schedule(5.0, lambda: None)
        assert engine.peek_next_time() == 3.0
        handle.cancel()
        assert engine.peek_next_time() == 5.0

    def test_reentrant_run_rejected(self):
        engine = Engine()

        def recurse():
            engine.run()

        engine.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            engine.run()


class TestDeterminism:
    """Engine-owned sequence numbers: no cross-engine scheduling history.

    Regression guard for the per-engine event counter — with a process-wide
    counter, an engine's trace (and anything derived from it, like tie-break
    order of simultaneous events) depended on how many events *other*
    engines had scheduled first.
    """

    @staticmethod
    def _trace():
        engine = Engine()
        fired = []

        def chain(label, depth):
            fired.append((engine.now, label, depth))
            if depth:
                engine.schedule(1.5, lambda: chain(label, depth - 1))

        handles = [
            engine.schedule(float(i % 3), lambda i=i: chain(f"e{i}", 2)) for i in range(5)
        ]
        handles[3].cancel()
        engine.run()
        return fired, [handle.event.sequence for handle in handles]

    def test_two_engines_back_to_back_produce_identical_traces(self):
        assert self._trace() == self._trace()

    def test_sequence_numbers_are_engine_local(self):
        noisy = Engine()
        for _ in range(7):
            noisy.schedule(1.0, lambda: None)
        fresh = Engine()
        assert fresh.schedule(1.0, lambda: None).event.sequence == 0

    def test_reset_rewinds_the_sequence_counter(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        engine.reset()
        assert engine.schedule(1.0, lambda: None).event.sequence == 0


class TestEvent:
    def test_event_ordering(self):
        early = Event.at(1.0, lambda: None)
        late = Event.at(2.0, lambda: None)
        assert early < late

    def test_fire_returns_callback_value(self):
        event = Event.at(0.0, lambda: 42)
        assert event.fire() == 42
