"""Tests for latency-aware message delivery."""

from __future__ import annotations

import pytest

from repro.core.chaos import Fault, FaultPlan
from repro.exceptions import SimulationError
from repro.sim.engine import Engine
from repro.sim.network import NetworkFaultPlan, SimulatedNetwork, message_op_name


class Ping:
    """Fault-plan op name ``"ping"`` (lowercased class name)."""


class Pong:
    """Fault-plan op name ``"pong"``."""


class Recorder:
    """Message handler that records deliveries with their arrival times."""

    def __init__(self, engine):
        self.engine = engine
        self.received = []

    def handle_message(self, sender, message):
        self.received.append((self.engine.now, sender, message))


@pytest.fixture()
def wired(line_graph):
    engine = Engine()
    network = SimulatedNetwork(engine, line_graph, processing_delay_ms=0.0, seed=1)
    nodes = {}
    for host, router in (("alice", 0), ("bob", 5), ("carol", 0)):
        handler = Recorder(engine)
        network.attach_host(host, router, handler)
        nodes[host] = handler
    return engine, network, nodes


class TestAttachment:
    def test_attach_and_router_lookup(self, wired):
        _, network, _ = wired
        assert network.is_attached("alice")
        assert network.router_of("bob") == 5

    def test_attach_to_unknown_router_rejected(self, wired, line_graph):
        _, network, _ = wired
        with pytest.raises(SimulationError):
            network.attach_host("dave", 99, Recorder(None))

    def test_detach(self, wired):
        _, network, _ = wired
        network.detach_host("carol")
        assert not network.is_attached("carol")
        with pytest.raises(SimulationError):
            network.router_of("carol")


class TestDelivery:
    def test_message_arrives_after_path_latency(self, wired):
        engine, network, nodes = wired
        network.send("alice", "bob", "hello")
        engine.run()
        assert len(nodes["bob"].received) == 1
        arrival, sender, message = nodes["bob"].received[0]
        assert sender == "alice"
        assert message == "hello"
        assert arrival == pytest.approx(5.0)  # 5 unit-latency hops

    def test_same_router_hosts_have_small_delay(self, wired):
        engine, network, nodes = wired
        network.send("alice", "carol", "hi")
        engine.run()
        arrival, _, _ = nodes["carol"].received[0]
        assert arrival < 1.0

    def test_processing_delay_added(self, line_graph):
        engine = Engine()
        network = SimulatedNetwork(engine, line_graph, processing_delay_ms=2.0, seed=1)
        receiver = Recorder(engine)
        network.attach_host("a", 0, Recorder(engine))
        network.attach_host("b", 1, receiver)
        network.send("a", "b", "x")
        engine.run()
        assert receiver.received[0][0] == pytest.approx(3.0)

    def test_unknown_sender_or_recipient_rejected(self, wired):
        _, network, _ = wired
        with pytest.raises(SimulationError):
            network.send("ghost", "bob", "x")
        with pytest.raises(SimulationError):
            network.send("alice", "ghost", "x")

    def test_broadcast(self, wired):
        engine, network, nodes = wired
        network.broadcast("alice", ["bob", "carol"], "ping")
        engine.run()
        assert len(nodes["bob"].received) == 1
        assert len(nodes["carol"].received) == 1

    def test_delivery_records_kept(self, wired):
        engine, network, _ = wired
        record = network.send("alice", "bob", "x")
        assert record.delivered_at is None
        engine.run()
        assert record.delivered_at == pytest.approx(5.0)
        assert network.sent_messages == 1

    def test_message_to_detached_host_is_dropped(self, wired):
        engine, network, nodes = wired
        network.send("alice", "bob", "x")
        network.detach_host("bob")
        engine.run()
        assert nodes["bob"].received == []
        assert network.dropped_messages == 1


class TestLoss:
    def test_total_loss_drops_everything(self, line_graph):
        engine = Engine()
        network = SimulatedNetwork(engine, line_graph, loss_probability=1.0, seed=2)
        receiver = Recorder(engine)
        network.attach_host("a", 0, Recorder(engine))
        network.attach_host("b", 1, receiver)
        record = network.send("a", "b", "x")
        engine.run()
        assert record.dropped
        assert receiver.received == []
        assert network.dropped_messages == 1

    def test_partial_loss_is_deterministic_per_seed(self, line_graph):
        def run_once():
            engine = Engine()
            network = SimulatedNetwork(engine, line_graph, loss_probability=0.5, seed=7)
            receiver = Recorder(engine)
            network.attach_host("a", 0, Recorder(engine))
            network.attach_host("b", 1, receiver)
            outcomes = []
            for i in range(10):
                record = network.send("a", "b", i)
                outcomes.append(record.dropped)
            engine.run()
            return outcomes

        assert run_once() == run_once()

    def test_jitter_never_reorders_before_minimum_latency(self, line_graph):
        engine = Engine()
        network = SimulatedNetwork(engine, line_graph, jitter_ms=3.0, processing_delay_ms=0.0, seed=3)
        receiver = Recorder(engine)
        network.attach_host("a", 0, Recorder(engine))
        network.attach_host("b", 5, receiver)
        network.send("a", "b", "x")
        engine.run()
        assert receiver.received[0][0] >= 5.0


def _pair(line_graph, sender_router=0, receiver_router=1, **kwargs):
    """An engine, a network built with ``kwargs``, and an a->b receiver."""
    engine = Engine()
    kwargs.setdefault("processing_delay_ms", 0.0)
    kwargs.setdefault("seed", 1)
    network = SimulatedNetwork(engine, line_graph, **kwargs)
    receiver = Recorder(engine)
    network.attach_host("a", sender_router, Recorder(engine))
    network.attach_host("b", receiver_router, receiver)
    return engine, network, receiver


class TestDuplication:
    def test_duplicate_delivers_two_copies(self, line_graph):
        engine, network, receiver = _pair(line_graph, duplicate_probability=1.0, seed=4)
        network.send("a", "b", "x")
        engine.run()
        assert [message for _, _, message in receiver.received] == ["x", "x"]
        assert network.sent_messages == 1  # one send, two deliveries
        assert network.duplicated_messages == 1
        assert [record.duplicate for record in network.deliveries] == [False, True]

    def test_duplication_is_deterministic_per_seed(self, line_graph):
        def run_once():
            engine, network, receiver = _pair(line_graph, duplicate_probability=0.5, seed=9)
            for i in range(10):
                network.send("a", "b", i)
            engine.run()
            return network.duplicated_messages, [m for _, _, m in receiver.received]

        first = run_once()
        assert first == run_once()
        assert 0 < first[0] < 10  # partial duplication actually happened


class TestReorder:
    def test_reordered_message_waits_for_a_younger_delivery(self, line_graph):
        plan = NetworkFaultPlan.of(Fault(at_op=1, kind="reorder", op_name="ping"))
        engine, network, receiver = _pair(line_graph, receiver_router=5, fault_plan=plan)
        network.send("a", "b", Ping())
        network.send("a", "b", Pong())
        engine.run()
        kinds = [type(message).__name__ for _, _, message in receiver.received]
        assert kinds == ["Pong", "Ping"]  # the ping arrived late
        times = [arrival for arrival, _, _ in receiver.received]
        assert times[1] >= times[0]
        assert network.reordered_messages == 1
        assert network.held_messages == 0
        assert network.accounting_consistent()

    def test_held_message_with_no_younger_delivery_stays_in_flight(self, line_graph):
        engine, network, receiver = _pair(line_graph, reorder_probability=1.0)
        network.send("a", "b", "only")
        engine.run()
        assert receiver.received == []
        assert network.held_messages == 1
        assert network.dropped_messages == 0
        assert network.accounting_consistent()

    def test_reorder_knob_is_deterministic_per_seed(self, line_graph):
        def run_once():
            engine, network, receiver = _pair(line_graph, reorder_probability=0.5, seed=13)
            for i in range(10):
                network.send("a", "b", i)
            engine.run()
            return network.reordered_messages, [m for _, _, m in receiver.received]

        first = run_once()
        assert first == run_once()
        assert first[0] > 0


class TestTeardown:
    """Epoch-stamped attachments: in-flight traffic dies with the epoch."""

    def test_detach_drops_reorder_held_messages(self, line_graph):
        plan = NetworkFaultPlan.of(Fault(at_op=1, kind="reorder", op_name="ping"))
        engine, network, receiver = _pair(line_graph, fault_plan=plan)
        network.send("a", "b", Ping())
        network.detach_host("b")
        engine.run()
        assert receiver.received == []
        assert network.held_messages == 0
        assert network.dropped_messages == 1
        assert network.accounting_consistent()

    def test_in_flight_message_never_reaches_a_reattached_successor(self, wired):
        engine, network, nodes = wired
        network.send("alice", "bob", "for-old-bob")
        network.detach_host("bob")
        successor = Recorder(engine)
        network.attach_host("bob", 5, successor)
        engine.run()
        # The message was addressed to the old epoch; the successor under
        # the same host id must never see it.
        assert successor.received == []
        assert nodes["bob"].received == []
        assert network.dropped_messages == 1
        network.send("alice", "bob", "for-new-bob")
        engine.run()
        assert [message for _, _, message in successor.received] == ["for-new-bob"]
        assert network.accounting_consistent()

    def test_accounting_consistent_under_loss_and_detach(self, line_graph):
        engine, network, _receiver = _pair(line_graph, receiver_router=3, loss_probability=0.4, seed=11)
        for i in range(8):
            network.send("a", "b", i)
        network.detach_host("b")  # everything not lost at send is now doomed
        engine.run()
        assert all(record.delivered_at is None for record in network.deliveries)
        assert network.dropped_messages == len(network.deliveries) == 8
        assert network.accounting_consistent()


class TestNetworkFaultPlan:
    """The shared chaos vocabulary applied to the wire."""

    def test_backend_only_kinds_rejected_at_construction(self):
        with pytest.raises(SimulationError):
            NetworkFaultPlan.of(Fault(at_op=1, kind="crash_before"))

    def test_drop_fault_drops_the_counted_message(self, line_graph):
        plan = NetworkFaultPlan.of(Fault(at_op=2, kind="drop"))
        engine, network, receiver = _pair(line_graph, fault_plan=plan)
        for i in range(3):
            network.send("a", "b", i)
        engine.run()
        assert [message for _, _, message in receiver.received] == [0, 2]
        assert network.dropped_messages == 1
        assert plan.fired == [(2, "drop", "int")]  # op name: lowercased class

    def test_delay_fault_adds_simulated_milliseconds(self, line_graph):
        plan = NetworkFaultPlan.of(Fault(at_op=1, kind="delay", delay_s=0.004))
        engine, network, receiver = _pair(line_graph, receiver_router=5, fault_plan=plan)
        network.send("a", "b", "slow")
        engine.run()
        # 5 unit-latency hops + delay_s * 1000 simulated ms.
        assert receiver.received[0][0] == pytest.approx(9.0)

    def test_duplicate_fault_delivers_twice(self, line_graph):
        plan = NetworkFaultPlan.of(Fault(at_op=1, kind="duplicate"))
        engine, network, receiver = _pair(line_graph, fault_plan=plan)
        network.send("a", "b", "x")
        engine.run()
        assert [message for _, _, message in receiver.received] == ["x", "x"]
        assert network.duplicated_messages == 1

    def test_partition_drops_every_message_in_its_window(self, line_graph):
        plan = NetworkFaultPlan.of(Fault(at_op=2, kind="partition", window_ops=3))
        engine, network, receiver = _pair(line_graph, fault_plan=plan)
        for i in range(5):
            network.send("a", "b", i)
        engine.run()
        assert [message for _, _, message in receiver.received] == [0, 4]
        assert network.dropped_messages == 3

    def test_op_name_filter_targets_one_message_stream(self, line_graph):
        plan = NetworkFaultPlan.of(
            Fault(at_op=1, kind="drop", op_name="ping", persistent=True)
        )
        engine, network, receiver = _pair(line_graph, fault_plan=plan)
        for message in (Ping(), Pong(), Ping(), Pong()):
            network.send("a", "b", message)
        engine.run()
        kinds = [type(message).__name__ for _, _, message in receiver.received]
        assert kinds == ["Pong", "Pong"]
        assert network.dropped_messages == 2
        assert {entry[2] for entry in plan.fired} == {"ping"}

    def test_message_op_name_prefers_an_explicit_attribute(self):
        class Custom:
            op_name = "weird"

        assert message_op_name(Custom()) == "weird"
        assert message_op_name(Ping()) == "ping"
        assert message_op_name(3) == "int"
