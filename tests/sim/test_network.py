"""Tests for latency-aware message delivery."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import Engine
from repro.sim.network import SimulatedNetwork


class Recorder:
    """Message handler that records deliveries with their arrival times."""

    def __init__(self, engine):
        self.engine = engine
        self.received = []

    def handle_message(self, sender, message):
        self.received.append((self.engine.now, sender, message))


@pytest.fixture()
def wired(line_graph):
    engine = Engine()
    network = SimulatedNetwork(engine, line_graph, processing_delay_ms=0.0, seed=1)
    nodes = {}
    for host, router in (("alice", 0), ("bob", 5), ("carol", 0)):
        handler = Recorder(engine)
        network.attach_host(host, router, handler)
        nodes[host] = handler
    return engine, network, nodes


class TestAttachment:
    def test_attach_and_router_lookup(self, wired):
        _, network, _ = wired
        assert network.is_attached("alice")
        assert network.router_of("bob") == 5

    def test_attach_to_unknown_router_rejected(self, wired, line_graph):
        _, network, _ = wired
        with pytest.raises(SimulationError):
            network.attach_host("dave", 99, Recorder(None))

    def test_detach(self, wired):
        _, network, _ = wired
        network.detach_host("carol")
        assert not network.is_attached("carol")
        with pytest.raises(SimulationError):
            network.router_of("carol")


class TestDelivery:
    def test_message_arrives_after_path_latency(self, wired):
        engine, network, nodes = wired
        network.send("alice", "bob", "hello")
        engine.run()
        assert len(nodes["bob"].received) == 1
        arrival, sender, message = nodes["bob"].received[0]
        assert sender == "alice"
        assert message == "hello"
        assert arrival == pytest.approx(5.0)  # 5 unit-latency hops

    def test_same_router_hosts_have_small_delay(self, wired):
        engine, network, nodes = wired
        network.send("alice", "carol", "hi")
        engine.run()
        arrival, _, _ = nodes["carol"].received[0]
        assert arrival < 1.0

    def test_processing_delay_added(self, line_graph):
        engine = Engine()
        network = SimulatedNetwork(engine, line_graph, processing_delay_ms=2.0, seed=1)
        receiver = Recorder(engine)
        network.attach_host("a", 0, Recorder(engine))
        network.attach_host("b", 1, receiver)
        network.send("a", "b", "x")
        engine.run()
        assert receiver.received[0][0] == pytest.approx(3.0)

    def test_unknown_sender_or_recipient_rejected(self, wired):
        _, network, _ = wired
        with pytest.raises(SimulationError):
            network.send("ghost", "bob", "x")
        with pytest.raises(SimulationError):
            network.send("alice", "ghost", "x")

    def test_broadcast(self, wired):
        engine, network, nodes = wired
        network.broadcast("alice", ["bob", "carol"], "ping")
        engine.run()
        assert len(nodes["bob"].received) == 1
        assert len(nodes["carol"].received) == 1

    def test_delivery_records_kept(self, wired):
        engine, network, _ = wired
        record = network.send("alice", "bob", "x")
        assert record.delivered_at is None
        engine.run()
        assert record.delivered_at == pytest.approx(5.0)
        assert network.sent_messages == 1

    def test_message_to_detached_host_is_dropped(self, wired):
        engine, network, nodes = wired
        network.send("alice", "bob", "x")
        network.detach_host("bob")
        engine.run()
        assert nodes["bob"].received == []
        assert network.dropped_messages == 1


class TestLoss:
    def test_total_loss_drops_everything(self, line_graph):
        engine = Engine()
        network = SimulatedNetwork(engine, line_graph, loss_probability=1.0, seed=2)
        receiver = Recorder(engine)
        network.attach_host("a", 0, Recorder(engine))
        network.attach_host("b", 1, receiver)
        record = network.send("a", "b", "x")
        engine.run()
        assert record.dropped
        assert receiver.received == []
        assert network.dropped_messages == 1

    def test_partial_loss_is_deterministic_per_seed(self, line_graph):
        def run_once():
            engine = Engine()
            network = SimulatedNetwork(engine, line_graph, loss_probability=0.5, seed=7)
            receiver = Recorder(engine)
            network.attach_host("a", 0, Recorder(engine))
            network.attach_host("b", 1, receiver)
            outcomes = []
            for i in range(10):
                record = network.send("a", "b", i)
                outcomes.append(record.dropped)
            engine.run()
            return outcomes

        assert run_once() == run_once()

    def test_jitter_never_reorders_before_minimum_latency(self, line_graph):
        engine = Engine()
        network = SimulatedNetwork(engine, line_graph, jitter_ms=3.0, processing_delay_ms=0.0, seed=3)
        receiver = Recorder(engine)
        network.attach_host("a", 0, Recorder(engine))
        network.attach_host("b", 5, receiver)
        network.send("a", "b", "x")
        engine.run()
        assert receiver.received[0][0] >= 5.0
