"""Tests for the event-driven protocol endpoints (ServerNode / PeerNode)."""

from __future__ import annotations

import pytest

from repro.core.management_server import ManagementServer
from repro.core.protocol import JoinRequest, LeaveNotice
from repro.exceptions import ProtocolError
from repro.routing.route_table import RouteTable
from repro.routing.traceroute import TracerouteSimulator
from repro.sim.engine import Engine
from repro.sim.network import SimulatedNetwork
from repro.sim.node import PeerNode, ServerNode
from repro.topology.graph import Graph


@pytest.fixture()
def world():
    """A small topology with one landmark, a server host and three peers."""
    graph = Graph()
    graph.add_edge("a1", "a2", latency=1.0)
    graph.add_edge("a2", "core", latency=1.0)
    graph.add_edge("core", "lmA", latency=1.0)
    graph.add_edge("core", "b1", latency=1.0)

    engine = Engine()
    network = SimulatedNetwork(engine, graph, processing_delay_ms=0.1, seed=1)
    server = ManagementServer(neighbor_set_size=2)
    server.register_landmark("lmA", "lmA")
    server_node = ServerNode("server", server, network)
    network.attach_host("server", "lmA", server_node)
    traceroute = TracerouteSimulator(graph=graph, route_table=RouteTable(graph=graph))

    def make_peer(peer_id, router):
        node = PeerNode(
            host_id=peer_id,
            access_router=router,
            server_host="server",
            engine=engine,
            network=network,
            traceroute=traceroute,
            per_hop_probe_ms=5.0,
        )
        network.attach_host(peer_id, router, node)
        return node

    return engine, network, server, server_node, make_peer


class TestJoinFlow:
    def test_single_peer_join_completes(self, world):
        engine, _, server, _, make_peer = world
        peer = make_peer("p1", "a1")
        record = peer.start_join()
        engine.run()
        assert record.completed
        assert record.setup_delay > 0
        assert server.has_peer("p1")
        assert peer.path is not None
        assert peer.path.routers[0] == "a1"
        assert peer.path.routers[-1] == "lmA"

    def test_later_peer_receives_neighbors(self, world):
        engine, _, _, _, make_peer = world
        first = make_peer("p1", "a1")
        second = make_peer("p2", "a2")
        first.start_join()
        engine.run()
        second.start_join()
        engine.run()
        assert second.record.completed
        assert [n.peer_id for n in second.record.neighbors] == ["p1"]

    def test_setup_delay_ordering(self, world):
        """Probe time dominates; farther peers take longer to finish."""
        engine, _, _, _, make_peer = world
        near = make_peer("near", "a2")   # 2 hops to lmA
        far = make_peer("far", "a1")     # 3 hops to lmA
        near.start_join()
        far.start_join()
        engine.run()
        assert near.record.setup_delay < far.record.setup_delay

    def test_leave_unregisters_peer(self, world):
        engine, network, server, _, make_peer = world
        peer = make_peer("p1", "b1")
        peer.start_join()
        engine.run()
        assert server.has_peer("p1")
        peer.leave()
        engine.run()
        assert not server.has_peer("p1")
        assert not network.is_attached("p1")

    def test_server_counts_messages(self, world):
        engine, _, _, server_node, make_peer = world
        peer = make_peer("p1", "a1")
        peer.start_join()
        engine.run()
        # JoinRequest + PathReport.
        assert server_node.handled_messages == 2


class TestProtocolErrors:
    def test_server_rejects_unknown_message(self, world):
        _, _, _, server_node, _ = world
        with pytest.raises(ProtocolError):
            server_node.handle_message("someone", object())

    def test_peer_rejects_message_before_join(self, world):
        _, _, _, _, make_peer = world
        peer = make_peer("p1", "a1")
        with pytest.raises(ProtocolError):
            peer.handle_message("server", JoinRequest(peer_id="p1"))

    def test_server_ignores_leave_for_unknown_peer(self, world):
        _, _, server, server_node, _ = world
        server_node.handle_message("x", LeaveNotice(peer_id="never-joined"))
        assert server.peer_count == 0
