"""Tests for seeded random streams."""

from __future__ import annotations

import pytest

from repro.sim.rng import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "alpha") == derive_seed(1, "alpha")

    def test_depends_on_stream_name(self):
        assert derive_seed(1, "alpha") != derive_seed(1, "beta")

    def test_depends_on_base_seed(self):
        assert derive_seed(1, "alpha") != derive_seed(2, "alpha")

    def test_none_base_seed_supported(self):
        assert derive_seed(None, "alpha") == derive_seed(None, "alpha")

    def test_seed_is_non_negative(self):
        assert derive_seed(123, "x") >= 0


class TestRandomStreams:
    def test_streams_are_cached(self):
        streams = RandomStreams(7)
        assert streams.stream("a") is streams.stream("a")

    def test_streams_are_independent(self):
        streams = RandomStreams(7)
        first_a = streams.stream("a").random()
        # Drawing from stream b must not affect stream a's future values.
        streams_reference = RandomStreams(7)
        streams_reference.stream("b").random()
        assert first_a == RandomStreams(7).stream("a").random()
        assert streams_reference.stream("a").random() == first_a

    def test_reproducible_across_instances(self):
        values_one = [RandomStreams(3).stream("x").random() for _ in range(1)]
        values_two = [RandomStreams(3).stream("x").random() for _ in range(1)]
        assert values_one == values_two

    def test_reset_rewinds_streams(self):
        streams = RandomStreams(5)
        first = streams.stream("x").random()
        streams.reset()
        assert streams.stream("x").random() == first

    def test_seed_for_matches_derive_seed(self):
        streams = RandomStreams(9)
        assert streams.seed_for("landmarks") == derive_seed(9, "landmarks")

    def test_invalid_seed_rejected(self):
        with pytest.raises(Exception):
            RandomStreams(-1)
