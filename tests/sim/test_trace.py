"""Tests for the trace/statistics collector."""

from __future__ import annotations

import pytest

from repro.exceptions import MetricError
from repro.sim.trace import TraceCollector, summarize_values


class TestSummaries:
    def test_basic_statistics(self):
        summary = summarize_values([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.p50 == 3.0
        assert summary.p90 == 5.0
        assert summary.std == pytest.approx(1.4142, rel=1e-3)

    def test_single_value(self):
        summary = summarize_values([7.0])
        assert summary.mean == 7.0
        assert summary.p99 == 7.0
        assert summary.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            summarize_values([])


class TestCollector:
    def test_counters(self):
        trace = TraceCollector()
        trace.increment("messages")
        trace.increment("messages", 2.0)
        assert trace.counter("messages") == 3.0
        assert trace.counter("unknown") == 0.0

    def test_series(self):
        trace = TraceCollector()
        for value in (1.0, 2.0, 3.0):
            trace.record("delay", value)
        assert trace.values("delay") == [1.0, 2.0, 3.0]
        assert trace.has_series("delay")
        assert not trace.has_series("other")
        assert trace.summary("delay").mean == 2.0

    def test_summary_of_missing_series_raises(self):
        with pytest.raises(MetricError):
            TraceCollector().summary("nothing")

    def test_events(self):
        trace = TraceCollector()
        trace.log_event(1.0, "peer p1 joined")
        trace.log_event(2.0, "peer p2 joined")
        trace.log_event(3.0, "peer p1 left")
        assert len(trace.events_matching("p1")) == 2
        assert trace.events_matching("crash") == []

    def test_as_dict_round_trip_shape(self):
        trace = TraceCollector()
        trace.increment("joins")
        trace.record("delay", 4.0)
        trace.log_event(0.0, "start")
        exported = trace.as_dict()
        assert exported["counters"] == {"joins": 1.0}
        assert exported["series"] == {"delay": [4.0]}
        assert exported["events"] == [(0.0, "start")]
