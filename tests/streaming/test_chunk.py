"""Tests for chunks and the sliding chunk buffer."""

from __future__ import annotations

import pytest

from repro.exceptions import StreamingError
from repro.streaming.chunk import Chunk, ChunkBuffer


class TestChunk:
    def test_valid_chunk(self):
        chunk = Chunk(index=3, created_at=1.5, size_kb=50.0)
        assert chunk.index == 3

    def test_invalid_chunk(self):
        with pytest.raises(StreamingError):
            Chunk(index=-1, created_at=0.0)
        with pytest.raises(StreamingError):
            Chunk(index=0, created_at=0.0, size_kb=0.0)


class TestChunkBuffer:
    def test_add_and_query(self):
        buffer = ChunkBuffer(window_size=10)
        assert buffer.add(Chunk(index=0, created_at=0.0), received_at=0.5)
        assert buffer.has(0)
        assert 0 in buffer
        assert buffer.get(0).index == 0
        assert buffer.received_at(0) == 0.5
        assert buffer.size == 1

    def test_duplicate_add_rejected(self):
        buffer = ChunkBuffer()
        chunk = Chunk(index=1, created_at=0.0)
        assert buffer.add(chunk, 1.0)
        assert not buffer.add(chunk, 2.0)
        assert buffer.received_at(1) == 1.0

    def test_old_chunks_evicted(self):
        buffer = ChunkBuffer(window_size=3)
        for index in range(6):
            buffer.add(Chunk(index=index, created_at=float(index)), received_at=float(index))
        assert buffer.highest_index == 5
        assert not buffer.has(0)
        assert not buffer.has(2)
        assert buffer.has(3)
        assert buffer.has(5)

    def test_too_old_chunk_not_accepted(self):
        buffer = ChunkBuffer(window_size=3)
        buffer.add(Chunk(index=10, created_at=0.0), 0.0)
        assert not buffer.add(Chunk(index=5, created_at=0.0), 1.0)

    def test_get_missing_chunk_raises(self):
        buffer = ChunkBuffer()
        with pytest.raises(StreamingError):
            buffer.get(7)
        with pytest.raises(StreamingError):
            buffer.received_at(7)

    def test_bitmap_and_missing(self):
        buffer = ChunkBuffer(window_size=10)
        for index in (0, 2, 3):
            buffer.add(Chunk(index=index, created_at=0.0), 0.0)
        assert buffer.bitmap(0, 5) == [True, False, True, True, False]
        assert buffer.missing_in_window(0, 5) == [1, 4]

    def test_bitmap_invalid_length(self):
        with pytest.raises(StreamingError):
            ChunkBuffer().bitmap(0, 0)

    def test_contiguous_from(self):
        buffer = ChunkBuffer(window_size=10)
        for index in (2, 3, 4, 6):
            buffer.add(Chunk(index=index, created_at=0.0), 0.0)
        assert buffer.contiguous_from(2) == 3
        assert buffer.contiguous_from(5) == 0

    def test_iteration_sorted(self):
        buffer = ChunkBuffer(window_size=10)
        for index in (4, 1, 3):
            buffer.add(Chunk(index=index, created_at=0.0), 0.0)
        assert list(buffer) == [1, 3, 4]
        assert buffer.indices() == [1, 3, 4]
        assert len(buffer) == 3

    def test_invalid_window(self):
        with pytest.raises(StreamingError):
            ChunkBuffer(window_size=0)
