"""Tests for the round-based mesh streaming simulation."""

from __future__ import annotations

import pytest

from repro.exceptions import StreamingError
from repro.overlay.overlay import Overlay
from repro.streaming.mesh import MeshConfig, MeshStreamingSession
from repro.streaming.scheduler import RarestFirstScheduler


def build_chain_overlay(size: int = 6) -> Overlay:
    """Peers p0-p1-...-p(n-1) linked in a chain (symmetric links)."""
    overlay = Overlay()
    for index in range(size):
        overlay.create_peer(f"p{index}", access_router=index)
    for index in range(size - 1):
        overlay.set_neighbors(f"p{index}", [f"p{index + 1}"])
    return overlay


def index_distance(peer_a, peer_b) -> float:
    return abs(int(peer_a[1:]) - int(peer_b[1:]))


class TestConfiguration:
    def test_invalid_config_rejected(self):
        with pytest.raises(Exception):
            MeshConfig(rounds=0)
        with pytest.raises(Exception):
            MeshConfig(latency_per_hop_s=0.0)

    def test_source_must_be_in_overlay(self):
        overlay = build_chain_overlay()
        with pytest.raises(StreamingError):
            MeshStreamingSession(overlay, "ghost", index_distance)


class TestStreaming:
    def test_chunks_propagate_down_the_chain(self):
        overlay = build_chain_overlay(5)
        session = MeshStreamingSession(
            overlay,
            "p0",
            index_distance,
            config=MeshConfig(rounds=40, requests_per_round=4, uploads_per_round=8),
        )
        result = session.run()
        assert result.chunks_injected == 40
        # The far end of the chain still receives a healthy share of chunks.
        assert len(result.reception_times["p4"]) > 10
        assert result.total_transfers > 0

    def test_all_peers_start_playback(self):
        overlay = build_chain_overlay(4)
        session = MeshStreamingSession(
            overlay, "p0", index_distance, config=MeshConfig(rounds=40, uploads_per_round=8)
        )
        result = session.run()
        for report in result.playback_reports.values():
            assert report.startup_delay_s is not None
        assert result.mean_startup_delay() > 0
        assert 0.0 < result.mean_continuity() <= 1.0

    def test_source_receives_everything_immediately(self):
        overlay = build_chain_overlay(3)
        session = MeshStreamingSession(overlay, "p0", index_distance, config=MeshConfig(rounds=20))
        result = session.run()
        assert len(result.reception_times["p0"]) == 20
        assert result.playback_reports["p0"].continuity == 1.0

    def test_closer_neighbours_give_lower_delivery_delay(self):
        """A star around the source beats a long chain on delivery delay."""
        chain = build_chain_overlay(6)
        star = Overlay()
        for index in range(6):
            star.create_peer(f"p{index}", access_router=index)
        for index in range(1, 6):
            star.set_neighbors(f"p{index}", ["p0"])

        config = MeshConfig(rounds=40, uploads_per_round=10, requests_per_round=4)
        chain_result = MeshStreamingSession(chain, "p0", index_distance, config=config).run()
        star_result = MeshStreamingSession(star, "p0", index_distance, config=config).run()
        assert star_result.mean_delivery_delay_s < chain_result.mean_delivery_delay_s

    def test_alternative_scheduler_accepted(self):
        overlay = build_chain_overlay(4)
        session = MeshStreamingSession(
            overlay,
            "p0",
            index_distance,
            config=MeshConfig(rounds=20),
            scheduler=RarestFirstScheduler(seed=1),
        )
        result = session.run()
        assert result.chunks_injected == 20

    def test_isolated_peer_never_starts(self):
        overlay = build_chain_overlay(3)
        overlay.create_peer("loner", access_router=99)
        session = MeshStreamingSession(
            overlay, "p0", lambda a, b: 1.0, config=MeshConfig(rounds=20)
        )
        result = session.run()
        assert result.playback_reports["loner"].startup_delay_s is None
        assert result.playback_reports["loner"].continuity == 0.0

    def test_no_peer_exceeds_continuity_one(self):
        overlay = build_chain_overlay(5)
        result = MeshStreamingSession(
            overlay, "p0", index_distance, config=MeshConfig(rounds=30)
        ).run()
        assert all(0.0 <= report.continuity <= 1.0 for report in result.playback_reports.values())

    def test_mean_startup_raises_when_nobody_started(self):
        overlay = Overlay()
        overlay.create_peer("p0", access_router=0)
        overlay.create_peer("p1", access_router=1)  # not connected to the source
        result = MeshStreamingSession(
            overlay, "p0", lambda a, b: 1.0, config=MeshConfig(rounds=5, startup_buffer_chunks=10)
        ).run()
        with pytest.raises(StreamingError):
            result.mean_startup_delay()
