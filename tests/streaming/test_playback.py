"""Tests for the playback / setup-delay model."""

from __future__ import annotations

import pytest

from repro.exceptions import StreamingError
from repro.streaming.playback import (
    PlaybackModel,
    mean_continuity,
    playback_delay_spread,
)


class TestStartupDelay:
    def test_requires_consecutive_chunks(self):
        model = PlaybackModel(chunk_duration_s=1.0, startup_buffer_chunks=3)
        reception = {0: 1.0, 1: 2.0, 2: 3.0}
        assert model.startup_delay(0.0, reception) == pytest.approx(3.0)

    def test_gap_delays_startup(self):
        model = PlaybackModel(startup_buffer_chunks=3)
        reception = {0: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}
        # The first run of 3 consecutive chunks is 2,3,4, complete at t=4.
        assert model.startup_delay(0.0, reception) == pytest.approx(4.0)

    def test_never_starts_without_enough_chunks(self):
        model = PlaybackModel(startup_buffer_chunks=3)
        assert model.startup_delay(0.0, {0: 1.0, 2: 2.0}) is None
        assert model.startup_delay(0.0, {}) is None

    def test_relative_to_join_time(self):
        model = PlaybackModel(startup_buffer_chunks=1)
        assert model.startup_delay(10.0, {5: 12.0}) == pytest.approx(2.0)

    def test_invalid_parameters(self):
        with pytest.raises(StreamingError):
            PlaybackModel(chunk_duration_s=0.0)
        with pytest.raises(StreamingError):
            PlaybackModel(startup_buffer_chunks=0)


class TestEvaluate:
    def test_full_reception_counts_all_played(self):
        model = PlaybackModel(chunk_duration_s=1.0, startup_buffer_chunks=2)
        reception = {index: index * 1.0 + 0.5 for index in range(10)}
        report = model.evaluate("p", 0.0, reception, 0, 9)
        assert report.chunks_played == 10
        assert report.chunks_missed == 0
        assert report.continuity == 1.0
        assert report.stalls == 0
        assert report.playback_delay_s == pytest.approx(0.5)

    def test_missing_chunks_counted_as_stalls(self):
        model = PlaybackModel()
        reception = {0: 0.1, 1: 1.1, 4: 4.1, 5: 5.1}
        report = model.evaluate("p", 0.0, reception, 0, 5)
        assert report.chunks_played == 4
        assert report.chunks_missed == 2
        assert report.stalls == 1  # consecutive misses count once
        assert report.continuity == pytest.approx(4 / 6)

    def test_playback_delay_covers_worst_late_chunk(self):
        model = PlaybackModel(chunk_duration_s=1.0)
        reception = {0: 0.0, 1: 5.0, 2: 2.0}
        report = model.evaluate("p", 0.0, reception, 0, 2)
        assert report.playback_delay_s == pytest.approx(4.0)

    def test_invalid_range(self):
        model = PlaybackModel()
        with pytest.raises(StreamingError):
            model.evaluate("p", 0.0, {}, 5, 3)


class TestAggregates:
    def _reports(self):
        model = PlaybackModel(startup_buffer_chunks=1)
        fast = model.evaluate("fast", 0.0, {0: 0.2, 1: 1.2, 2: 2.2}, 0, 2)
        slow = model.evaluate("slow", 0.0, {0: 1.5, 1: 2.5, 2: 3.5}, 0, 2)
        return [fast, slow]

    def test_playback_delay_spread(self):
        reports = self._reports()
        assert playback_delay_spread(reports) == pytest.approx(1.3)

    def test_spread_with_single_report_is_zero(self):
        assert playback_delay_spread(self._reports()[:1]) == 0.0

    def test_mean_continuity(self):
        assert mean_continuity(self._reports()) == pytest.approx(1.0)

    def test_mean_continuity_empty_raises(self):
        with pytest.raises(StreamingError):
            mean_continuity([])
