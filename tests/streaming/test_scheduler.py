"""Tests for chunk-scheduling policies."""

from __future__ import annotations

import pytest

from repro.exceptions import StreamingError
from repro.streaming.scheduler import (
    EarliestDeadlineScheduler,
    RarestFirstScheduler,
    SequentialScheduler,
    make_scheduler,
)


NEIGHBOR_BITMAPS = {
    "n1": {1: True, 2: True, 3: False, 4: True},
    "n2": {1: False, 2: True, 3: False, 4: True},
    "n3": {1: False, 2: False, 3: False, 4: True},
}
MISSING = [1, 2, 3, 4]


class TestSequential:
    def test_requests_in_index_order(self):
        scheduler = SequentialScheduler(seed=1)
        requests = scheduler.schedule(MISSING, NEIGHBOR_BITMAPS, budget=10)
        indices = [index for index, _ in requests]
        assert indices == [1, 2, 4]  # 3 has no holder

    def test_budget_respected(self):
        scheduler = SequentialScheduler(seed=1)
        assert len(scheduler.schedule(MISSING, NEIGHBOR_BITMAPS, budget=2)) == 2

    def test_holders_actually_hold_requested_chunks(self):
        scheduler = SequentialScheduler(seed=2)
        for index, holder in scheduler.schedule(MISSING, NEIGHBOR_BITMAPS, budget=10):
            assert NEIGHBOR_BITMAPS[holder][index]


class TestRarestFirst:
    def test_rarest_chunk_requested_first(self):
        scheduler = RarestFirstScheduler(seed=1)
        requests = scheduler.schedule(MISSING, NEIGHBOR_BITMAPS, budget=10)
        # Chunk 1 has a single holder, chunk 2 has two, chunk 4 has three.
        assert [index for index, _ in requests] == [1, 2, 4]
        assert requests[0][1] == "n1"

    def test_unavailable_chunks_skipped(self):
        scheduler = RarestFirstScheduler(seed=1)
        requests = scheduler.schedule([3], NEIGHBOR_BITMAPS, budget=5)
        assert requests == []


class TestEarliestDeadline:
    def test_orders_by_deadline(self):
        scheduler = EarliestDeadlineScheduler(seed=1)
        deadlines = {1: 30.0, 2: 10.0, 4: 20.0}
        requests = scheduler.schedule(MISSING, NEIGHBOR_BITMAPS, budget=10, deadlines=deadlines)
        assert [index for index, _ in requests] == [2, 4, 1]

    def test_without_deadlines_falls_back_to_index_order(self):
        scheduler = EarliestDeadlineScheduler(seed=1)
        requests = scheduler.schedule(MISSING, NEIGHBOR_BITMAPS, budget=10)
        assert [index for index, _ in requests] == [1, 2, 4]


class TestFactory:
    def test_make_scheduler(self):
        assert isinstance(make_scheduler("sequential"), SequentialScheduler)
        assert isinstance(make_scheduler("rarest_first"), RarestFirstScheduler)
        assert isinstance(make_scheduler("earliest_deadline"), EarliestDeadlineScheduler)

    def test_unknown_scheduler(self):
        with pytest.raises(StreamingError):
            make_scheduler("clairvoyant")
