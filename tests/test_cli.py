"""Tests for the repro-experiments command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments.results import ResultTable
from repro.experiments import runner


@pytest.fixture()
def stub_experiment(monkeypatch):
    """Register a fast fake experiment so CLI tests do not run real sweeps."""
    table = ResultTable(name="stub", columns=["peers", "ratio"])
    table.add_row(peers=10, ratio=1.5)
    monkeypatch.setitem(runner.EXPERIMENTS, "stub", lambda: table)
    return table


class TestParser:
    def test_parses_experiments_and_flags(self):
        parser = build_parser()
        args = parser.parse_args(["figure1-quick", "--csv"])
        assert args.experiments == ["figure1-quick"]
        assert args.csv
        assert args.output is None

    def test_output_flag_is_a_path(self, tmp_path):
        args = build_parser().parse_args(["churn", "--output", str(tmp_path)])
        assert args.output == tmp_path


class TestMain:
    def test_list_prints_experiments(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert "churn" in output

    def test_no_experiment_is_an_error(self, capsys):
        assert main([]) == 2
        assert "no experiment" in capsys.readouterr().err

    def test_unknown_experiment_is_an_error(self, capsys):
        assert main(["not-an-experiment"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_experiment_and_prints_table(self, stub_experiment, capsys):
        assert main(["stub"]) == 0
        output = capsys.readouterr().out
        assert "peers" in output
        assert "1.500" in output

    def test_csv_output(self, stub_experiment, capsys):
        assert main(["stub", "--csv"]) == 0
        output = capsys.readouterr().out
        assert "peers,ratio" in output

    def test_saves_json_when_output_given(self, stub_experiment, capsys, tmp_path):
        assert main(["stub", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "stub.json").exists()


class TestShardServeDispatch:
    def test_shard_serve_without_binds_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["shard-serve"])
        assert "--tcp / --unix" in capsys.readouterr().err

    def test_shard_serve_rejects_malformed_tcp_spec(self, capsys):
        with pytest.raises(SystemExit):
            main(["shard-serve", "--tcp", "7421"])
        assert "HOST:PORT" in capsys.readouterr().err
