"""Tests for the shared validation helpers and the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import exceptions
from repro._validation import (
    coerce_seed,
    require_in_range,
    require_non_empty,
    require_non_negative_float,
    require_non_negative_int,
    require_one_of,
    require_positive_float,
    require_positive_int,
    require_probability,
)
from repro.exceptions import ConfigurationError, ReproError


class TestIntegerValidation:
    def test_positive_int_accepts(self):
        assert require_positive_int(3, "x") == 3

    @pytest.mark.parametrize("value", [0, -1, 1.5, "3", True])
    def test_positive_int_rejects(self, value):
        with pytest.raises(ConfigurationError):
            require_positive_int(value, "x")

    def test_non_negative_int(self):
        assert require_non_negative_int(0, "x") == 0
        with pytest.raises(ConfigurationError):
            require_non_negative_int(-1, "x")


class TestFloatValidation:
    def test_positive_float(self):
        assert require_positive_float(2, "x") == 2.0
        with pytest.raises(ConfigurationError):
            require_positive_float(0.0, "x")
        with pytest.raises(ConfigurationError):
            require_positive_float("nope", "x")

    def test_non_negative_float(self):
        assert require_non_negative_float(0.0, "x") == 0.0
        with pytest.raises(ConfigurationError):
            require_non_negative_float(-0.1, "x")

    def test_probability(self):
        assert require_probability(0.5, "x") == 0.5
        assert require_probability(0, "x") == 0.0
        assert require_probability(1, "x") == 1.0
        with pytest.raises(ConfigurationError):
            require_probability(1.01, "x")

    def test_in_range(self):
        assert require_in_range(5, 0, 10, "x") == 5.0
        with pytest.raises(ConfigurationError):
            require_in_range(11, 0, 10, "x")


class TestOtherValidation:
    def test_non_empty(self):
        assert require_non_empty([1], "x") == [1]
        with pytest.raises(ConfigurationError):
            require_non_empty([], "x")

    def test_one_of(self):
        assert require_one_of("a", ("a", "b"), "x") == "a"
        with pytest.raises(ConfigurationError):
            require_one_of("z", ("a", "b"), "x")

    def test_coerce_seed(self):
        assert coerce_seed(None) is None
        assert coerce_seed(5) == 5
        with pytest.raises(ConfigurationError):
            coerce_seed(-3)
        with pytest.raises(ConfigurationError):
            coerce_seed(True)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_class",
        [
            exceptions.TopologyError,
            exceptions.RoutingError,
            exceptions.SimulationError,
            exceptions.ProtocolError,
            exceptions.LandmarkError,
            exceptions.OverlayError,
            exceptions.StreamingError,
            exceptions.ConfigurationError,
            exceptions.MetricError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_class):
        assert issubclass(exception_class, ReproError)

    def test_node_not_found_carries_node_id(self):
        error = exceptions.NodeNotFoundError("r17")
        assert error.node_id == "r17"
        assert "r17" in str(error)

    def test_no_route_error_carries_endpoints(self):
        error = exceptions.NoRouteError("a", "b")
        assert error.source == "a"
        assert error.destination == "b"

    def test_unknown_peer_error(self):
        error = exceptions.UnknownPeerError("peer9")
        assert error.peer_id == "peer9"
        assert isinstance(error, exceptions.ProtocolError)
