"""Tests for betweenness centrality, k-core decomposition and core extraction."""

from __future__ import annotations

import pytest

from repro.exceptions import NodeNotFoundError
from repro.topology.centrality import (
    approximate_betweenness,
    betweenness_centrality,
    centrality_concentration,
    core_nodes,
    degree_centrality,
    k_core_decomposition,
)
from repro.topology.graph import Graph


class TestBetweenness:
    def test_star_centre_has_all_betweenness(self, star_graph):
        centrality = betweenness_centrality(star_graph, normalized=True)
        assert centrality[0] == pytest.approx(1.0)
        assert all(centrality[leaf] == pytest.approx(0.0) for leaf in range(1, 7))

    def test_line_graph_middle_highest(self, line_graph):
        centrality = betweenness_centrality(line_graph, normalized=False)
        assert centrality[2] == centrality[3]
        assert centrality[2] > centrality[1] > centrality[0]

    def test_line_graph_exact_values(self, line_graph):
        # For a path of 6 nodes, node 1 lies on the shortest paths between
        # {0} and {2,3,4,5}: 4 pairs.
        centrality = betweenness_centrality(line_graph, normalized=False)
        assert centrality[1] == pytest.approx(4.0)
        assert centrality[2] == pytest.approx(6.0)

    def test_unknown_source_raises(self, line_graph):
        with pytest.raises(NodeNotFoundError):
            betweenness_centrality(line_graph, sources=["ghost"])

    def test_approximate_matches_exact_ranking_on_small_graph(self, tree_graph):
        exact = betweenness_centrality(tree_graph)
        approx = approximate_betweenness(tree_graph, pivots=100, seed=1)
        top_exact = max(exact, key=exact.get)
        top_approx = max(approx, key=approx.get)
        assert top_exact == top_approx

    def test_approximate_with_few_pivots_runs(self, star_graph):
        approx = approximate_betweenness(star_graph, pivots=3, seed=2)
        assert max(approx, key=approx.get) == 0


class TestDegreeCentrality:
    def test_star(self, star_graph):
        centrality = degree_centrality(star_graph)
        assert centrality[0] == pytest.approx(1.0)
        assert centrality[1] == pytest.approx(1 / 6)

    def test_single_node_graph(self):
        graph = Graph()
        graph.add_node("only")
        assert degree_centrality(graph)["only"] == 0.0


class TestKCore:
    def test_tree_coreness_is_one(self, tree_graph):
        coreness = k_core_decomposition(tree_graph)
        assert set(coreness.values()) == {1}

    def test_triangle_with_tail(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.add_edge(3, 1)
        graph.add_edge(3, 4)
        coreness = k_core_decomposition(graph)
        assert coreness[1] == coreness[2] == coreness[3] == 2
        assert coreness[4] == 1

    def test_core_nodes_prefers_dense_subgraph(self):
        graph = Graph()
        # A 4-clique plus pendant nodes.
        clique = [10, 11, 12, 13]
        for i, u in enumerate(clique):
            for v in clique[i + 1 :]:
                graph.add_edge(u, v)
        for leaf in range(4):
            graph.add_edge(leaf, 10)
        top = core_nodes(graph, fraction=0.5)
        assert set(clique).issubset(set(top))

    def test_core_nodes_invalid_fraction(self, star_graph):
        with pytest.raises(ValueError):
            core_nodes(star_graph, fraction=0.0)


class TestConcentration:
    def test_star_concentration_is_total(self, star_graph):
        concentration = centrality_concentration(star_graph, top_fraction=0.2, pivots=10, seed=1)
        assert concentration == pytest.approx(1.0)

    def test_cycle_concentration_is_spread(self):
        graph = Graph()
        nodes = list(range(12))
        for u, v in zip(nodes, nodes[1:] + nodes[:1]):
            graph.add_edge(u, v)
        concentration = centrality_concentration(graph, top_fraction=0.25, pivots=12, seed=1)
        # In a symmetric cycle the top 25% carry roughly 25% of the load.
        assert concentration < 0.5
