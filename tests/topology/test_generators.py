"""Tests for the synthetic topology generators."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GeneratorError
from repro.topology import metrics
from repro.topology.generators import (
    GENERATORS,
    barabasi_albert,
    generate,
    glp,
    powerlaw_configuration_model,
    powerlaw_degree_sequence,
    random_regular,
    two_tier_hierarchical,
    waxman,
)


class TestBarabasiAlbert:
    def test_node_and_edge_counts(self):
        graph = barabasi_albert(100, m=2, seed=1)
        assert graph.node_count == 100
        # The seed star has m edges; every later node adds up to m edges.
        assert graph.edge_count <= 2 + 2 * 98
        assert graph.edge_count >= 100

    def test_connected(self):
        graph = barabasi_albert(150, m=2, seed=3)
        assert graph.is_connected()

    def test_heavy_tail_present(self):
        graph = barabasi_albert(400, m=2, seed=5)
        assert metrics.max_degree(graph) >= 15

    def test_deterministic_given_seed(self):
        first = barabasi_albert(80, m=2, seed=11)
        second = barabasi_albert(80, m=2, seed=11)
        assert sorted(first.to_edge_list()) == sorted(second.to_edge_list())

    def test_different_seeds_differ(self):
        first = barabasi_albert(80, m=2, seed=11)
        second = barabasi_albert(80, m=2, seed=12)
        assert sorted(first.to_edge_list()) != sorted(second.to_edge_list())

    def test_requires_n_greater_than_m(self):
        with pytest.raises(GeneratorError):
            barabasi_albert(3, m=3)

    def test_accepts_external_rng(self):
        rng = random.Random(7)
        graph = barabasi_albert(50, m=1, rng=rng)
        assert graph.node_count == 50


class TestGlp:
    def test_basic_properties(self):
        graph = glp(120, m=2, seed=2)
        assert graph.node_count == 120
        assert graph.is_connected()

    def test_heavy_tail(self):
        graph = glp(300, m=2, seed=4)
        assert metrics.max_degree(graph) >= 10

    def test_invalid_parameters(self):
        with pytest.raises(GeneratorError):
            glp(3, m=2)
        with pytest.raises(Exception):
            glp(100, m=2, p=1.5)


class TestWaxman:
    def test_positions_recorded(self):
        graph = waxman(60, seed=3)
        for node in graph.nodes():
            pos = graph.get_node_attribute(node, "pos")
            assert pos is not None and len(pos) == 2

    def test_connected_when_requested(self):
        graph = waxman(80, alpha=0.1, beta=0.05, seed=9, ensure_connected=True)
        assert graph.is_connected()

    def test_distance_attribute_on_edges(self):
        graph = waxman(40, seed=5)
        for u, v in list(graph.edges())[:10]:
            assert graph.get_edge_attribute(u, v, "distance") is None or graph.get_edge_attribute(
                u, v, "distance"
            ) >= 0


class TestPowerlawConfigurationModel:
    def test_degree_sequence_sum_is_even(self):
        sequence = powerlaw_degree_sequence(201, exponent=2.3, seed=1)
        assert sum(sequence) % 2 == 0
        assert len(sequence) == 201
        assert min(sequence) >= 1

    def test_degree_sequence_respects_bounds(self):
        sequence = powerlaw_degree_sequence(100, min_degree=2, max_degree=10, seed=2)
        assert min(sequence) >= 2
        assert max(sequence) <= 11  # +1 possible from the parity fix

    def test_max_degree_below_min_degree_rejected(self):
        with pytest.raises(GeneratorError):
            powerlaw_degree_sequence(50, min_degree=5, max_degree=2)

    def test_graph_is_simple_and_connected(self):
        graph = powerlaw_configuration_model(200, seed=3)
        assert graph.is_connected()
        for u, v in graph.edges():
            assert u != v

    def test_heavy_tail(self):
        graph = powerlaw_configuration_model(400, exponent=2.1, seed=7)
        assert metrics.max_degree(graph) > 3 * metrics.average_degree(graph)


class TestRandomRegular:
    def test_degrees_are_regular(self):
        graph = random_regular(60, degree=4, seed=1)
        degrees = set(graph.degrees().values())
        # The generator retries until it gets an exactly regular simple graph,
        # but the documented fallback may be slightly irregular; accept both
        # while requiring near-regularity.
        assert max(degrees) <= 4
        assert min(degrees) >= 3

    def test_odd_total_degree_rejected(self):
        with pytest.raises(GeneratorError):
            random_regular(5, degree=3)

    def test_degree_at_least_n_rejected(self):
        with pytest.raises(GeneratorError):
            random_regular(4, degree=4)


class TestTwoTier:
    def test_tier_attributes(self):
        graph = two_tier_hierarchical(core_size=10, edge_size=40, seed=1)
        core = [n for n in graph.nodes() if graph.get_node_attribute(n, "tier") == "core"]
        edge = [n for n in graph.nodes() if graph.get_node_attribute(n, "tier") == "edge"]
        assert len(core) == 10
        assert len(edge) == 40

    def test_edge_nodes_sparser_than_core(self):
        graph = two_tier_hierarchical(core_size=10, edge_size=60, edge_attachment=1, seed=2)
        edge_nodes = [n for n in graph.nodes() if graph.get_node_attribute(n, "tier") == "edge"]
        core_nodes = [n for n in graph.nodes() if graph.get_node_attribute(n, "tier") == "core"]
        edge_mean = sum(graph.degree(n) for n in edge_nodes) / len(edge_nodes)
        core_mean = sum(graph.degree(n) for n in core_nodes) / len(core_nodes)
        assert edge_mean < core_mean
        # Most access nodes keep exactly their single uplink.
        assert sum(1 for n in edge_nodes if graph.degree(n) == 1) >= len(edge_nodes) * 0.5

    def test_invalid_core_size(self):
        with pytest.raises(GeneratorError):
            two_tier_hierarchical(core_size=2, edge_size=10, core_attachment=3)


class TestRegistry:
    def test_all_generators_registered(self):
        assert set(GENERATORS) == {
            "barabasi_albert",
            "glp",
            "waxman",
            "powerlaw_configuration_model",
            "random_regular",
            "two_tier_hierarchical",
        }

    def test_generate_dispatch(self):
        graph = generate("barabasi_albert", n=30, m=1, seed=1)
        assert graph.node_count == 30

    def test_generate_unknown_name(self):
        with pytest.raises(GeneratorError):
            generate("erdos_renyi", n=10)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(10, 80), m=st.integers(1, 3))
def test_property_ba_graphs_are_connected(n, m):
    """Preferential attachment always yields a connected graph."""
    if n <= m:
        return
    graph = barabasi_albert(n, m=m, seed=n * 10 + m)
    assert graph.is_connected()
    assert graph.node_count == n


@settings(max_examples=10, deadline=None)
@given(n=st.integers(20, 120), exponent=st.floats(1.8, 3.0))
def test_property_powerlaw_sequence_is_graphical_sum(n, exponent):
    """Drawn degree sequences always have an even sum (configuration-model ready)."""
    sequence = powerlaw_degree_sequence(n, exponent=exponent, seed=int(exponent * 100) + n)
    assert sum(sequence) % 2 == 0
