"""Tests for the adjacency-list graph substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError, TopologyError
from repro.topology.graph import DEFAULT_WEIGHT_KEY, Graph, edge_key


class TestNodes:
    def test_add_node_is_idempotent(self):
        graph = Graph()
        graph.add_node("a", tier="core")
        graph.add_node("a", color="red")
        assert graph.node_count == 1
        assert graph.node_attributes("a") == {"tier": "core", "color": "red"}

    def test_has_node(self):
        graph = Graph()
        graph.add_node(1)
        assert graph.has_node(1)
        assert not graph.has_node(2)

    def test_remove_node_drops_incident_edges(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.remove_node(2)
        assert not graph.has_node(2)
        assert graph.edge_count == 0
        assert graph.degree(1) == 0
        assert graph.degree(3) == 0

    def test_remove_missing_node_raises(self):
        graph = Graph()
        with pytest.raises(NodeNotFoundError):
            graph.remove_node("ghost")

    def test_node_attribute_helpers(self):
        graph = Graph()
        graph.add_node("r1")
        graph.set_node_attribute("r1", "tier", "stub")
        assert graph.get_node_attribute("r1", "tier") == "stub"
        assert graph.get_node_attribute("r1", "missing", default=42) == 42

    def test_node_attributes_of_missing_node_raises(self):
        graph = Graph()
        with pytest.raises(NodeNotFoundError):
            graph.node_attributes("nope")

    def test_len_contains_iter(self):
        graph = Graph()
        for node in ("a", "b", "c"):
            graph.add_node(node)
        assert len(graph) == 3
        assert "b" in graph
        assert sorted(graph) == ["a", "b", "c"]


class TestEdges:
    def test_add_edge_creates_endpoints(self):
        graph = Graph()
        graph.add_edge("x", "y", latency=3.0)
        assert graph.has_node("x") and graph.has_node("y")
        assert graph.has_edge("x", "y")
        assert graph.has_edge("y", "x")
        assert graph.edge_count == 1

    def test_edge_attributes_are_shared_between_directions(self):
        graph = Graph()
        graph.add_edge(1, 2, latency=5.0)
        graph.set_edge_attribute(2, 1, "latency", 9.0)
        assert graph.get_edge_attribute(1, 2, "latency") == 9.0

    def test_self_loop_rejected(self):
        graph = Graph()
        with pytest.raises(TopologyError):
            graph.add_edge("a", "a")

    def test_duplicate_edge_merges_attributes(self):
        graph = Graph()
        graph.add_edge(1, 2, latency=1.0)
        graph.add_edge(1, 2, capacity=10)
        assert graph.edge_count == 1
        assert graph.edge_attributes(1, 2) == {"latency": 1.0, "capacity": 10}

    def test_remove_edge(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.remove_edge(2, 1)
        assert not graph.has_edge(1, 2)
        assert graph.edge_count == 0

    def test_remove_missing_edge_raises(self):
        graph = Graph()
        graph.add_node(1)
        graph.add_node(2)
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(1, 2)

    def test_edges_iterates_each_edge_once(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.add_edge(3, 1)
        assert len(list(graph.edges())) == 3

    def test_edge_weight_defaults_to_one(self):
        graph = Graph()
        graph.add_edge(1, 2)
        assert graph.edge_weight(1, 2) == 1.0
        graph.set_edge_attribute(1, 2, DEFAULT_WEIGHT_KEY, 2.5)
        assert graph.edge_weight(1, 2) == 2.5

    def test_edge_key_is_order_independent(self):
        assert edge_key(3, 7) == edge_key(7, 3)

    def test_edge_key_mixed_types_fall_back_to_repr(self):
        assert edge_key(1, "a") == edge_key("a", 1)

    def test_edge_key_is_canonical_under_partial_orders(self):
        """Ids that compare False both ways (NaN, sets) must still canonicalise."""
        nan = float("nan")
        assert edge_key(nan, 1) == edge_key(1, nan)
        a, b = frozenset({1}), frozenset({2})
        assert edge_key(a, b) == edge_key(b, a)


class TestDegreesAndNeighbors:
    def test_degree_and_neighbors(self, star_graph):
        assert star_graph.degree(0) == 6
        assert star_graph.degree(3) == 1
        assert sorted(star_graph.neighbors(0)) == [1, 2, 3, 4, 5, 6]

    def test_degree_of_missing_node_raises(self):
        graph = Graph()
        with pytest.raises(NodeNotFoundError):
            graph.degree("missing")

    def test_nodes_with_degree(self, star_graph):
        assert sorted(star_graph.nodes_with_degree(1)) == [1, 2, 3, 4, 5, 6]
        assert star_graph.nodes_with_degree(6) == [0]
        assert star_graph.nodes_with_degree(4) == []

    def test_nodes_with_degree_between(self, line_graph):
        assert sorted(line_graph.nodes_with_degree_between(2, 2)) == [1, 2, 3, 4]
        assert sorted(line_graph.nodes_with_degree_between(1, 1)) == [0, 5]

    def test_degrees_mapping(self, line_graph):
        degrees = line_graph.degrees()
        assert degrees[0] == 1
        assert degrees[3] == 2
        assert sum(degrees.values()) == 2 * line_graph.edge_count


class TestConnectivity:
    def test_connected_component(self, line_graph):
        assert sorted(line_graph.connected_component(0)) == [0, 1, 2, 3, 4, 5]

    def test_connected_components_of_forest(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        graph.add_node(5)
        components = sorted(sorted(component) for component in graph.connected_components())
        assert components == [[1, 2], [3, 4], [5]]

    def test_is_connected(self, line_graph):
        assert line_graph.is_connected()
        line_graph.remove_edge(2, 3)
        assert not line_graph.is_connected()

    def test_empty_graph_is_not_connected(self):
        assert not Graph().is_connected()

    def test_largest_component_subgraph(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.add_edge(10, 11)
        largest = graph.largest_component_subgraph()
        assert sorted(largest.nodes()) == [1, 2, 3]
        assert largest.edge_count == 2

    def test_subgraph_preserves_attributes(self):
        graph = Graph()
        graph.add_node(1, tier="core")
        graph.add_edge(1, 2, latency=4.0)
        graph.add_edge(2, 3)
        sub = graph.subgraph([1, 2])
        assert sub.get_node_attribute(1, "tier") == "core"
        assert sub.edge_weight(1, 2) == 4.0
        assert not sub.has_node(3)

    def test_subgraph_with_unknown_node_raises(self):
        graph = Graph()
        graph.add_node(1)
        with pytest.raises(NodeNotFoundError):
            graph.subgraph([1, 99])

    def test_copy_is_independent(self, line_graph):
        clone = line_graph.copy()
        clone.remove_edge(0, 1)
        assert line_graph.has_edge(0, 1)
        assert not clone.has_edge(0, 1)


class TestConversions:
    def test_networkx_round_trip(self, tree_graph):
        nx_graph = tree_graph.to_networkx()
        back = Graph.from_networkx(nx_graph, name="back")
        assert back.node_count == tree_graph.node_count
        assert back.edge_count == tree_graph.edge_count
        assert sorted(back.nodes()) == sorted(tree_graph.nodes())

    def test_from_edge_list_with_weights(self):
        edges = [(1, 2), (2, 3)]
        weights = {edge_key(1, 2): 7.0}
        graph = Graph.from_edge_list(edges, weights=weights)
        assert graph.edge_weight(1, 2) == 7.0
        assert graph.edge_weight(2, 3) == 1.0

    def test_to_edge_list(self, line_graph):
        assert len(line_graph.to_edge_list()) == 5

    def test_repr_mentions_counts(self, line_graph):
        assert "nodes=6" in repr(line_graph)
        assert "edges=5" in repr(line_graph)


@settings(max_examples=25, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(lambda e: e[0] != e[1]),
        max_size=40,
    )
)
def test_property_edge_count_matches_degree_sum(edges):
    """Handshake lemma: sum of degrees equals twice the number of edges."""
    graph = Graph()
    for u, v in edges:
        graph.add_edge(u, v)
    assert sum(graph.degrees().values()) == 2 * graph.edge_count


@settings(max_examples=25, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=30,
    )
)
def test_property_components_partition_nodes(edges):
    """Connected components partition the node set."""
    graph = Graph()
    for u, v in edges:
        graph.add_edge(u, v)
    components = graph.connected_components()
    seen = [node for component in components for node in component]
    assert sorted(seen) == sorted(graph.nodes())
    assert len(seen) == len(set(seen))
