"""Tests for the synthetic router-level map (the paper's substrate)."""

from __future__ import annotations

import pytest

from repro.exceptions import GeneratorError
from repro.topology.centrality import centrality_concentration
from repro.topology.internet_mapper import (
    RouterMapConfig,
    TIER_CORE,
    TIER_STUB,
    TIER_TRANSIT,
    generate_router_map,
    paper_router_map,
    small_router_map,
)
from repro.topology.latency import ConstantLatencyModel
from repro.topology.metrics import degree_one_fraction, estimate_powerlaw_exponent


class TestConfig:
    def test_total_routers(self):
        config = RouterMapConfig(core_size=10, transit_size=20, stub_size=30, seed=1)
        assert config.total_routers == 60

    def test_invalid_sizes_rejected(self):
        with pytest.raises(Exception):
            RouterMapConfig(core_size=0)
        with pytest.raises(GeneratorError):
            RouterMapConfig(core_size=3, core_attachment=4)

    def test_invalid_probability_rejected(self):
        with pytest.raises(Exception):
            RouterMapConfig(stub_tree_probability=1.5)


class TestGeneration:
    @pytest.fixture(scope="class")
    def router_map(self):
        return generate_router_map(
            RouterMapConfig(
                core_size=15,
                core_attachment=3,
                transit_size=60,
                transit_attachment=2,
                stub_size=250,
                stub_attachment=1,
                seed=5,
            )
        )

    def test_router_count_matches_config(self, router_map):
        assert router_map.router_count == router_map.config.total_routers

    def test_graph_is_connected(self, router_map):
        assert router_map.graph.is_connected()

    def test_every_router_has_a_tier(self, router_map):
        for node in router_map.graph.nodes():
            assert router_map.graph.get_node_attribute(node, "tier") in (
                TIER_CORE,
                TIER_TRANSIT,
                TIER_STUB,
            )

    def test_tier_lists_partition_routers(self, router_map):
        total = sum(len(router_map.routers_in_tier(t)) for t in (TIER_CORE, TIER_TRANSIT, TIER_STUB))
        assert total == router_map.router_count

    def test_has_many_degree_one_routers(self, router_map):
        """The paper attaches peers to degree-1 routers; there must be plenty."""
        stubs = router_map.stub_routers()
        assert len(stubs) > router_map.config.stub_size * 0.3
        for router in stubs[:50]:
            assert router_map.graph.degree(router) == 1

    def test_medium_degree_routers_exclude_leaves(self, router_map):
        mediums = router_map.medium_degree_routers()
        assert mediums
        for router in mediums:
            assert router_map.graph.degree(router) >= 3

    def test_core_routers_have_high_degree(self, router_map):
        core = router_map.core_routers()
        assert core
        core_mean = sum(router_map.graph.degree(r) for r in core) / len(core)
        stub_mean = sum(router_map.graph.degree(r) for r in router_map.routers_in_tier(TIER_STUB)) / len(
            router_map.routers_in_tier(TIER_STUB)
        )
        assert core_mean > 3 * stub_mean

    def test_latencies_assigned_to_every_edge(self, router_map):
        for u, v in router_map.graph.edges():
            assert router_map.graph.edge_weight(u, v) > 0

    def test_degree_histogram_sums_to_router_count(self, router_map):
        histogram = router_map.degree_histogram()
        assert sum(histogram.values()) == router_map.router_count

    def test_heavy_tail_exponent_in_realistic_range(self, router_map):
        exponent = estimate_powerlaw_exponent(router_map.graph)
        assert 1.5 < exponent < 3.5

    def test_betweenness_concentrated_on_core(self, router_map):
        """The paper's structural assumption: a few routers carry most shortest paths."""
        concentration = centrality_concentration(
            router_map.graph, top_fraction=0.05, pivots=24, seed=1
        )
        assert concentration > 0.5


class TestVariants:
    def test_deterministic_given_seed(self):
        first = generate_router_map(RouterMapConfig(core_size=10, transit_size=30, stub_size=80, seed=3))
        second = generate_router_map(RouterMapConfig(core_size=10, transit_size=30, stub_size=80, seed=3))
        assert sorted(first.graph.to_edge_list()) == sorted(second.graph.to_edge_list())

    def test_custom_latency_model(self):
        router_map = generate_router_map(
            RouterMapConfig(core_size=8, transit_size=20, stub_size=40, seed=2),
            latency_model=ConstantLatencyModel(latency_ms=3.0),
        )
        for u, v in router_map.graph.edges():
            assert router_map.graph.edge_weight(u, v) == 3.0

    def test_config_and_overrides_are_exclusive(self):
        with pytest.raises(GeneratorError):
            generate_router_map(RouterMapConfig(seed=1), stub_size=100)

    def test_overrides_build_a_config(self):
        router_map = generate_router_map(core_size=8, transit_size=10, stub_size=20, seed=1)
        assert router_map.config.stub_size == 20

    def test_small_router_map_helper(self):
        router_map = small_router_map(seed=1)
        assert 500 < router_map.router_count < 700

    def test_flat_access_layer_when_tree_probability_zero(self):
        router_map = generate_router_map(
            RouterMapConfig(
                core_size=8,
                transit_size=20,
                stub_size=60,
                stub_tree_probability=0.0,
                seed=4,
            )
        )
        # With no stub trees every stub attaches to transit/core, so the
        # degree-1 fraction is very high.
        assert degree_one_fraction(router_map.graph) > 0.5
