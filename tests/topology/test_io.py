"""Tests for topology persistence (edge lists, JSON, RouterMap round trips)."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.topology.graph import Graph
from repro.topology.io import (
    graph_from_dict,
    graph_to_dict,
    load_router_map,
    read_edge_list,
    read_graph_json,
    router_map_from_graph,
    save_router_map,
    write_edge_list,
    write_graph_json,
)

from ..conftest import make_small_map


class TestEdgeList:
    def test_round_trip_with_latencies(self, tmp_path, line_graph):
        path = write_edge_list(line_graph, tmp_path / "line.edges")
        loaded = read_edge_list(path)
        assert loaded.node_count == line_graph.node_count
        assert loaded.edge_count == line_graph.edge_count
        for u, v in line_graph.edges():
            assert loaded.edge_weight(u, v) == pytest.approx(line_graph.edge_weight(u, v))

    def test_round_trip_without_latencies(self, tmp_path, star_graph):
        path = write_edge_list(star_graph, tmp_path / "star.edges", include_latency=False)
        loaded = read_edge_list(path)
        assert loaded.edge_count == star_graph.edge_count
        assert loaded.edge_weight(0, 1) == 1.0  # default weight

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "map.edges"
        path.write_text("# a comment\n\n1 2 3.5\n2 3\n")
        graph = read_edge_list(path)
        assert graph.edge_count == 2
        assert graph.edge_weight(1, 2) == 3.5

    def test_string_node_ids_preserved(self, tmp_path):
        path = tmp_path / "map.edges"
        path.write_text("r-a r-b 2.0\n")
        graph = read_edge_list(path)
        assert graph.has_edge("r-a", "r-b")

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("1 2 3 4\n")
        with pytest.raises(TopologyError):
            read_edge_list(path)

    def test_bad_latency_rejected(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("1 2 fast\n")
        with pytest.raises(TopologyError):
            read_edge_list(path)

    def test_self_loop_rejected(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("1 1\n")
        with pytest.raises(TopologyError):
            read_edge_list(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.edges"
        path.write_text("# nothing here\n")
        with pytest.raises(TopologyError):
            read_edge_list(path)


class TestJson:
    def test_graph_dict_round_trip_preserves_attributes(self, tree_graph):
        tree_graph.set_node_attribute(0, "tier", "core")
        rebuilt = graph_from_dict(graph_to_dict(tree_graph))
        assert rebuilt.node_count == tree_graph.node_count
        assert rebuilt.edge_count == tree_graph.edge_count
        assert rebuilt.get_node_attribute(0, "tier") == "core"

    def test_graph_json_file_round_trip(self, tmp_path, line_graph):
        path = write_graph_json(line_graph, tmp_path / "line.json")
        loaded = read_graph_json(path)
        assert sorted(loaded.to_edge_list()) == sorted(line_graph.to_edge_list())

    def test_malformed_dict_rejected(self):
        with pytest.raises(TopologyError):
            graph_from_dict({"nodes": "oops"})


class TestRouterMapPersistence:
    def test_save_and_load_round_trip(self, tmp_path):
        router_map = make_small_map(seed=61)
        path = save_router_map(router_map, tmp_path / "map.json")
        loaded = load_router_map(path)
        assert loaded.router_count == router_map.router_count
        assert loaded.graph.edge_count == router_map.graph.edge_count
        assert sorted(loaded.tiers) == sorted(router_map.tiers)
        assert len(loaded.stub_routers()) == len(router_map.stub_routers())
        assert loaded.config.stub_size == router_map.config.stub_size

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{\"graph\": {}}")
        with pytest.raises(TopologyError):
            load_router_map(path)

    def test_router_map_from_untiered_graph_classifies_by_degree(self):
        graph = Graph(name="external")
        # A hub with many leaves plus a small chain: the hub must be core,
        # the leaves stubs.
        for leaf in range(1, 12):
            graph.add_edge(0, leaf)
        graph.add_edge(1, 20)
        graph.add_edge(20, 21)
        router_map = router_map_from_graph(graph)
        assert 0 in router_map.routers_in_tier("core")
        assert 5 in router_map.routers_in_tier("stub")
        assert router_map.stub_routers()
        # Every router received a tier attribute.
        for node in graph.nodes():
            assert graph.get_node_attribute(node, "tier") in ("core", "transit", "stub")

    def test_loaded_map_usable_in_a_scenario(self, tmp_path):
        """An externally loaded map drives the normal experiment pipeline."""
        from repro.workloads.scenarios import ScenarioConfig, build_scenario

        router_map = make_small_map(seed=62)
        path = save_router_map(router_map, tmp_path / "map.json")
        loaded = load_router_map(path)
        # Rebuild a scenario manually around the loaded map's graph.
        config = ScenarioConfig(
            peer_count=15,
            landmark_count=2,
            neighbor_set_size=2,
            router_map_config=router_map.config,
            seed=3,
        )
        scenario = build_scenario(config)
        assert scenario.router_map.router_count == loaded.router_count
