"""Tests for the link-latency models."""

from __future__ import annotations

import pytest

from repro.topology.graph import Graph
from repro.topology.latency import (
    ConstantLatencyModel,
    EuclideanLatencyModel,
    LogNormalLatencyModel,
    TieredLatencyModel,
    UniformLatencyModel,
)


@pytest.fixture()
def tiered_graph() -> Graph:
    graph = Graph()
    graph.add_node("c1", tier="core")
    graph.add_node("c2", tier="core")
    graph.add_node("t1", tier="transit")
    graph.add_node("s1", tier="stub")
    graph.add_edge("c1", "c2")
    graph.add_edge("c1", "t1")
    graph.add_edge("t1", "s1")
    return graph


class TestConstant:
    def test_assigns_same_value_everywhere(self, line_graph):
        ConstantLatencyModel(latency_ms=4.0).assign(line_graph)
        assert all(line_graph.edge_weight(u, v) == 4.0 for u, v in line_graph.edges())

    def test_rejects_non_positive(self):
        with pytest.raises(Exception):
            ConstantLatencyModel(latency_ms=0.0)


class TestUniform:
    def test_values_within_bounds(self, line_graph):
        UniformLatencyModel(low_ms=2.0, high_ms=3.0, seed=1).assign(line_graph)
        for u, v in line_graph.edges():
            assert 2.0 <= line_graph.edge_weight(u, v) <= 3.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformLatencyModel(low_ms=5.0, high_ms=1.0)

    def test_deterministic_with_seed(self, line_graph):
        graph_a = line_graph.copy()
        graph_b = line_graph.copy()
        UniformLatencyModel(seed=9).assign(graph_a)
        UniformLatencyModel(seed=9).assign(graph_b)
        for u, v in graph_a.edges():
            assert graph_a.edge_weight(u, v) == graph_b.edge_weight(u, v)


class TestLogNormal:
    def test_respects_minimum(self, line_graph):
        LogNormalLatencyModel(median_ms=1.0, sigma=2.0, minimum_ms=0.5, seed=3).assign(line_graph)
        for u, v in line_graph.edges():
            assert line_graph.edge_weight(u, v) >= 0.5

    def test_median_roughly_matches(self):
        graph = Graph()
        for i in range(400):
            graph.add_edge(f"a{i}", f"b{i}")
        LogNormalLatencyModel(median_ms=10.0, sigma=0.5, seed=4).assign(graph)
        values = sorted(graph.edge_weight(u, v) for u, v in graph.edges())
        median = values[len(values) // 2]
        assert 6.0 < median < 16.0


class TestTiered:
    def test_core_links_slower_than_access_links(self, tiered_graph):
        TieredLatencyModel(jitter_fraction=0.0, seed=1).assign(tiered_graph)
        core_core = tiered_graph.edge_weight("c1", "c2")
        access = tiered_graph.edge_weight("t1", "s1")
        assert core_core > access

    def test_unknown_tier_treated_as_transit(self):
        graph = Graph()
        graph.add_edge("x", "y")
        TieredLatencyModel(jitter_fraction=0.0).assign(graph)
        assert graph.edge_weight("x", "y") == pytest.approx(4.0)

    def test_jitter_keeps_latency_positive(self, tiered_graph):
        TieredLatencyModel(jitter_fraction=0.3, seed=2).assign(tiered_graph)
        for u, v in tiered_graph.edges():
            assert tiered_graph.edge_weight(u, v) > 0


class TestEuclidean:
    def test_latency_proportional_to_distance(self):
        graph = Graph()
        graph.add_node("a", pos=(0.0, 0.0))
        graph.add_node("b", pos=(0.0, 1.0))
        graph.add_node("c", pos=(0.0, 2.0))
        graph.add_edge("a", "b")
        graph.add_edge("a", "c")
        EuclideanLatencyModel(ms_per_unit=10.0).assign(graph)
        assert graph.edge_weight("a", "c") == pytest.approx(2 * graph.edge_weight("a", "b"))

    def test_fallback_without_positions(self):
        graph = Graph()
        graph.add_edge("a", "b")
        EuclideanLatencyModel(fallback_ms=7.0).assign(graph)
        assert graph.edge_weight("a", "b") == 7.0
