"""Tests for structural topology metrics."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import DisconnectedGraphError, NodeNotFoundError
from repro.topology.graph import Graph
from repro.topology.generators import barabasi_albert
from repro.topology.metrics import (
    approximate_diameter,
    average_clustering,
    average_degree,
    bfs_distances,
    clustering_coefficient,
    degree_ccdf,
    degree_distribution,
    degree_one_fraction,
    eccentricity,
    estimate_powerlaw_exponent,
    max_degree,
    sampled_path_length_stats,
    summarize,
)


class TestDegreeStatistics:
    def test_degree_distribution(self, star_graph):
        assert degree_distribution(star_graph) == {6: 1, 1: 6}

    def test_degree_ccdf_monotone(self, star_graph):
        ccdf = degree_ccdf(star_graph)
        degrees = [d for d, _ in ccdf]
        probabilities = [p for _, p in ccdf]
        assert degrees == sorted(degrees)
        assert probabilities == sorted(probabilities, reverse=True)
        assert probabilities[0] == pytest.approx(1.0)

    def test_degree_ccdf_empty_graph(self):
        assert degree_ccdf(Graph()) == []

    def test_average_degree(self, line_graph):
        assert average_degree(line_graph) == pytest.approx(2 * 5 / 6)

    def test_average_degree_empty(self):
        assert average_degree(Graph()) == 0.0

    def test_max_degree(self, star_graph):
        assert max_degree(star_graph) == 6
        assert max_degree(Graph()) == 0

    def test_degree_one_fraction(self, star_graph):
        assert degree_one_fraction(star_graph) == pytest.approx(6 / 7)

    def test_powerlaw_exponent_on_ba_graph(self):
        graph = barabasi_albert(500, m=2, seed=3)
        exponent = estimate_powerlaw_exponent(graph)
        assert 1.5 < exponent < 4.0

    def test_powerlaw_exponent_insufficient_tail(self, line_graph):
        assert math.isnan(estimate_powerlaw_exponent(line_graph, k_min=10))


class TestDistances:
    def test_bfs_distances_on_line(self, line_graph):
        distances = bfs_distances(line_graph, 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4, 5: 5}

    def test_bfs_distances_unknown_source(self, line_graph):
        with pytest.raises(NodeNotFoundError):
            bfs_distances(line_graph, 99)

    def test_eccentricity(self, line_graph):
        assert eccentricity(line_graph, 0) == 5
        assert eccentricity(line_graph, 2) == 3

    def test_eccentricity_requires_connected_graph(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_node(3)
        with pytest.raises(DisconnectedGraphError):
            eccentricity(graph, 1)

    def test_sampled_path_length_stats(self, line_graph):
        stats = sampled_path_length_stats(line_graph, samples=50, seed=1)
        assert 1.0 <= stats.mean <= 5.0
        assert stats.maximum <= 5
        assert stats.samples == 50

    def test_sampled_path_length_requires_two_nodes(self):
        graph = Graph()
        graph.add_node(1)
        with pytest.raises(DisconnectedGraphError):
            sampled_path_length_stats(graph, samples=5)

    def test_approximate_diameter_on_line(self, line_graph):
        assert approximate_diameter(line_graph, probes=5, seed=2) == 5

    def test_approximate_diameter_empty(self):
        assert approximate_diameter(Graph()) == 0


class TestClustering:
    def test_triangle_clustering_is_one(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.add_edge(3, 1)
        assert clustering_coefficient(graph, 1) == pytest.approx(1.0)

    def test_star_clustering_is_zero(self, star_graph):
        assert clustering_coefficient(star_graph, 0) == 0.0
        assert average_clustering(star_graph) == 0.0

    def test_degree_one_node_clustering_zero(self, line_graph):
        assert clustering_coefficient(line_graph, 0) == 0.0

    def test_average_clustering_with_sampling(self):
        graph = barabasi_albert(100, m=3, seed=4)
        sampled = average_clustering(graph, samples=30, seed=1)
        assert 0.0 <= sampled <= 1.0


class TestSummary:
    def test_summary_fields(self, small_router_map):
        summary = summarize(small_router_map.graph, seed=2)
        assert summary.nodes == small_router_map.router_count
        assert summary.edges == small_router_map.graph.edge_count
        assert summary.average_degree > 1.0
        assert summary.max_degree >= 10
        assert 0.0 < summary.degree_one_fraction < 1.0
        assert summary.approximate_diameter >= 5
        assert summary.mean_path_length > 2.0
