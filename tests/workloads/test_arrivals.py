"""Tests for peer arrival processes."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.arrivals import (
    arrival_rate,
    flash_crowd_arrivals,
    poisson_arrivals,
    sequential_arrivals,
    uniform_arrivals,
)

PEERS = [f"p{i}" for i in range(100)]


class TestPoisson:
    def test_all_peers_arrive_in_order(self):
        arrivals = poisson_arrivals(PEERS, rate_per_s=2.0, seed=1)
        assert len(arrivals) == len(PEERS)
        times = [arrival.time_s for arrival in arrivals]
        assert times == sorted(times)
        assert [arrival.peer_id for arrival in arrivals] == PEERS

    def test_rate_roughly_matches(self):
        arrivals = poisson_arrivals(PEERS, rate_per_s=5.0, seed=2)
        assert 2.5 < arrival_rate(arrivals) < 10.0

    def test_requires_peers_and_positive_rate(self):
        with pytest.raises(ConfigurationError):
            poisson_arrivals([], rate_per_s=1.0)
        with pytest.raises(Exception):
            poisson_arrivals(PEERS, rate_per_s=0.0)

    def test_start_time_offset(self):
        arrivals = poisson_arrivals(PEERS[:5], rate_per_s=1.0, start_time_s=100.0, seed=3)
        assert all(arrival.time_s > 100.0 for arrival in arrivals)


class TestFlashCrowd:
    def test_most_arrivals_in_the_ramp(self):
        arrivals = flash_crowd_arrivals(PEERS, duration_s=100.0, peak_fraction=0.8, ramp_fraction=0.2, seed=4)
        in_ramp = sum(1 for arrival in arrivals if arrival.time_s <= 20.0)
        assert in_ramp >= 70
        assert len(arrivals) == len(PEERS)

    def test_sorted_by_time(self):
        arrivals = flash_crowd_arrivals(PEERS, duration_s=60.0, seed=5)
        times = [arrival.time_s for arrival in arrivals]
        assert times == sorted(times)

    def test_invalid_fractions(self):
        with pytest.raises(ConfigurationError):
            flash_crowd_arrivals(PEERS, duration_s=10.0, peak_fraction=0.0)
        with pytest.raises(ConfigurationError):
            flash_crowd_arrivals(PEERS, duration_s=10.0, ramp_fraction=1.0)
        with pytest.raises(ConfigurationError):
            flash_crowd_arrivals([], duration_s=10.0)


class TestUniformAndSequential:
    def test_uniform_within_window(self):
        arrivals = uniform_arrivals(PEERS, duration_s=50.0, start_time_s=10.0, seed=6)
        assert all(10.0 <= arrival.time_s <= 60.0 for arrival in arrivals)
        assert len(arrivals) == len(PEERS)

    def test_sequential_spacing(self):
        arrivals = sequential_arrivals(["a", "b", "c"], interval_s=2.0, start_time_s=1.0)
        assert [arrival.time_s for arrival in arrivals] == [1.0, 3.0, 5.0]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            uniform_arrivals([], duration_s=5.0)
        with pytest.raises(ConfigurationError):
            sequential_arrivals([], interval_s=1.0)


class TestArrivalRate:
    def test_rate_of_sequential_arrivals(self):
        arrivals = sequential_arrivals(["a", "b", "c"], interval_s=1.0)
        assert arrival_rate(arrivals) == pytest.approx(1.0)

    def test_single_arrival_is_infinite_rate(self):
        arrivals = sequential_arrivals(["a"], interval_s=1.0)
        assert arrival_rate(arrivals) == float("inf")
