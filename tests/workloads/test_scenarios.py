"""Tests for the scenario builder (the paper's simulation setup)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.topology.internet_mapper import RouterMapConfig
from repro.workloads.scenarios import ScenarioConfig, build_scenario

from ..conftest import SMALL_MAP_KWARGS, make_small_scenario


class TestConfig:
    def test_invalid_counts_rejected(self):
        with pytest.raises(Exception):
            ScenarioConfig(peer_count=0)
        with pytest.raises(Exception):
            ScenarioConfig(landmark_count=0)
        with pytest.raises(Exception):
            ScenarioConfig(neighbor_set_size=0)

    def test_config_and_overrides_exclusive(self):
        with pytest.raises(ConfigurationError):
            build_scenario(ScenarioConfig(peer_count=10), peer_count=20)


class TestBuild:
    def test_setup_matches_paper(self, joined_scenario):
        """Peers on degree-1 routers, landmarks on medium-degree routers."""
        scenario = joined_scenario
        graph = scenario.router_map.graph
        for router in scenario.peer_routers.values():
            assert graph.degree(router) == 1
        for landmark in scenario.landmark_set:
            assert graph.degree(landmark.router) >= 3

    def test_peer_and_landmark_counts(self, joined_scenario):
        assert len(joined_scenario.peer_ids) == joined_scenario.config.peer_count
        assert len(joined_scenario.landmark_set) == joined_scenario.config.landmark_count
        assert set(joined_scenario.server.landmarks()) == set(joined_scenario.landmark_set.ids())

    def test_server_knows_inter_landmark_distances(self, joined_scenario):
        landmarks = joined_scenario.server.landmarks()
        assert joined_scenario.server.landmark_distance(landmarks[0], landmarks[1]) is not None

    def test_deterministic_given_seed(self):
        first = make_small_scenario(seed=21, peer_count=10)
        second = make_small_scenario(seed=21, peer_count=10)
        assert first.peer_routers == second.peer_routers
        assert first.landmark_set.routers() == second.landmark_set.routers()

    def test_different_seeds_differ(self):
        first = make_small_scenario(seed=21, peer_count=10)
        second = make_small_scenario(seed=22, peer_count=10)
        assert (
            first.peer_routers != second.peer_routers
            or first.landmark_set.routers() != second.landmark_set.routers()
        )


class TestJoins:
    def test_join_all_registers_every_peer(self, joined_scenario):
        assert joined_scenario.server.peer_count == joined_scenario.config.peer_count
        assert set(joined_scenario.join_results) == set(joined_scenario.peer_ids)

    def test_join_one_incremental(self, fresh_scenario):
        peer = fresh_scenario.peer_ids[0]
        result = fresh_scenario.join_one(peer)
        assert result.peer_id == peer
        assert fresh_scenario.server.peer_count == 1
        with pytest.raises(ConfigurationError):
            fresh_scenario.join_one("ghost")

    def test_every_peer_path_ends_at_its_landmark(self, joined_scenario):
        for peer, result in joined_scenario.join_results.items():
            landmark_router = joined_scenario.server.landmark_router(result.landmark_id)
            assert result.path.routers[-1] == landmark_router
            assert result.path.routers[0] == joined_scenario.peer_routers[peer]

    def test_peers_pick_a_nearby_landmark(self, joined_scenario):
        """The client-side RTT selection finds a landmark close to the oracle's pick.

        The probe measures RTT along the hop-count route (what traceroute
        follows), while the oracle minimises latency over latency-optimal
        routes, so the two can legitimately disagree on close calls; the
        chosen landmark must still be (near-)closest in hop distance.
        """
        from repro.routing.shortest_path import bfs_shortest_paths

        acceptable = 0
        total = 0
        for peer, result in joined_scenario.join_results.items():
            router = joined_scenario.peer_routers[peer]
            distances, _ = bfs_shortest_paths(joined_scenario.router_map.graph, router)
            landmark_hops = {
                landmark.landmark_id: distances[landmark.router]
                for landmark in joined_scenario.landmark_set
            }
            best_hops = min(landmark_hops.values())
            total += 1
            if landmark_hops[result.landmark_id] <= best_hops + 2:
                acceptable += 1
        assert acceptable / total > 0.85


class TestNeighborSets:
    def test_scheme_sets_require_joined_peers(self, fresh_scenario):
        with pytest.raises(ConfigurationError):
            fresh_scenario.scheme_neighbor_sets()

    def test_neighbor_set_sizes(self, joined_scenario):
        k = joined_scenario.config.neighbor_set_size
        for sets in (
            joined_scenario.scheme_neighbor_sets(),
            joined_scenario.oracle_neighbor_sets(),
            joined_scenario.random_neighbor_sets(),
        ):
            assert set(sets) == set(joined_scenario.peer_ids)
            assert all(len(neighbors) == k for neighbors in sets.values())
            assert all(peer not in neighbors for peer, neighbors in sets.items())

    def test_scheme_never_worse_than_random_on_average(self, joined_scenario):
        from repro.metrics.proximity import population_cost

        scheme = population_cost(joined_scenario.scheme_neighbor_sets(), joined_scenario.true_distance)
        random_cost = population_cost(joined_scenario.random_neighbor_sets(), joined_scenario.true_distance)
        optimal = population_cost(joined_scenario.oracle_neighbor_sets(), joined_scenario.true_distance)
        assert optimal <= scheme <= random_cost

    def test_random_sets_reproducible(self, joined_scenario):
        assert joined_scenario.random_neighbor_sets(seed=1) == joined_scenario.random_neighbor_sets(seed=1)

    def test_build_overlay(self, joined_scenario):
        overlay = joined_scenario.build_overlay(joined_scenario.scheme_neighbor_sets())
        assert overlay.size == joined_scenario.config.peer_count
        peer = joined_scenario.peer_ids[0]
        assert overlay.neighbors_of(peer) == joined_scenario.scheme_neighbor_sets()[peer]


class TestShardedScenario:
    def test_config_validates_shard_count(self):
        with pytest.raises(Exception):
            ScenarioConfig(shard_count=0)
        assert ScenarioConfig(shard_count=2).shard_count == 2

    def test_sharded_scenario_builds_sharded_plane(self):
        from repro.core.sharded import ShardedManagementServer

        scenario = make_small_scenario(seed=7, peer_count=20, shard_count=2)
        assert isinstance(scenario.server, ShardedManagementServer)
        assert scenario.server.shard_count == 2
        scenario.join_all()
        assert scenario.server.peer_count == 20

    def test_sharded_scenario_matches_single_server_scenario(self):
        """End-to-end equivalence: the full paper pipeline (map, landmarks,
        traceroute, joins) produces identical neighbour sets whether the
        management plane runs as one server or as four shards."""
        single = make_small_scenario(seed=11, peer_count=25)
        sharded = make_small_scenario(seed=11, peer_count=25, shard_count=4)
        single.join_all()
        sharded.join_all()
        assert sharded.scheme_neighbor_sets() == single.scheme_neighbor_sets()
        assert sharded.server.peers() == single.server.peers()
        for peer in single.peer_ids:
            assert sharded.server.closest_peers(peer, k=5) == single.server.closest_peers(peer, k=5)


class TestProcessBackendScenario:
    # Worker-process teardown is enforced suite-wide by the
    # no_leaked_workers autouse fixture in tests/conftest.py.

    def test_config_validates_backend(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(backend="bogus")
        with pytest.raises(ConfigurationError):
            ScenarioConfig(backend="process")  # needs shard_count
        assert ScenarioConfig(backend="process", shard_count=2).backend == "process"

    def test_process_scenario_builds_process_backed_shards(self):
        from repro.core.remote import ProcessShardBackend
        from repro.core.sharded import ShardedManagementServer

        with make_small_scenario(seed=7, peer_count=15, shard_count=2, backend="process") as scenario:
            assert isinstance(scenario.server, ShardedManagementServer)
            assert all(
                isinstance(shard, ProcessShardBackend) for shard in scenario.server.shards
            )
            scenario.join_all()
            assert scenario.server.peer_count == 15

    def test_process_scenario_matches_inline_scenario(self):
        """The full paper pipeline answers identically when every shard is a
        worker process behind the wire protocol."""
        inline = make_small_scenario(seed=11, peer_count=20, shard_count=2)
        with make_small_scenario(
            seed=11, peer_count=20, shard_count=2, backend="process"
        ) as process:
            inline.join_all()
            process.join_all()
            assert process.scheme_neighbor_sets() == inline.scheme_neighbor_sets()
            for peer in inline.peer_ids:
                assert process.server.closest_peers(peer, k=5) == inline.server.closest_peers(
                    peer, k=5
                )

    def test_close_reaps_workers_and_is_idempotent(self):
        scenario = make_small_scenario(seed=7, peer_count=10, shard_count=2, backend="process")
        processes = [shard.supervisor.process for shard in scenario.server.shards]
        assert all(process.is_alive() for process in processes)
        scenario.close()
        assert all(not process.is_alive() for process in processes)
        scenario.close()

    def test_inline_scenario_close_is_a_safe_no_op(self, fresh_scenario):
        fresh_scenario.close()
        fresh_scenario.join_all()  # still usable: nothing was torn down


class TestSocketBackendScenario:
    def test_config_validates_socket_backend(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(backend="socket")  # needs shard_count
        assert ScenarioConfig(backend="socket", shard_count=2).backend == "socket"

    def test_socket_scenario_builds_socket_backed_shards(self):
        from repro.core.sharded import ShardedManagementServer
        from repro.core.socket_backend import SocketShardBackend

        with make_small_scenario(
            seed=7, peer_count=15, shard_count=2, backend="socket"
        ) as scenario:
            assert isinstance(scenario.server, ShardedManagementServer)
            assert all(
                isinstance(shard, SocketShardBackend) for shard in scenario.server.shards
            )
            scenario.join_all()
            assert scenario.server.peer_count == 15

    def test_socket_scenario_matches_inline_scenario(self):
        """The full paper pipeline answers identically when every shard sits
        behind a loopback socket server."""
        inline = make_small_scenario(seed=11, peer_count=20, shard_count=2)
        with make_small_scenario(
            seed=11, peer_count=20, shard_count=2, backend="socket"
        ) as socket_scenario:
            inline.join_all()
            socket_scenario.join_all()
            assert socket_scenario.scheme_neighbor_sets() == inline.scheme_neighbor_sets()
            for peer in inline.peer_ids:
                assert socket_scenario.server.closest_peers(
                    peer, k=5
                ) == inline.server.closest_peers(peer, k=5)

    def test_close_tears_down_the_loopback_server_and_is_idempotent(self):
        scenario = make_small_scenario(seed=7, peer_count=10, shard_count=2, backend="socket")
        supervisors = [shard.supervisor for shard in scenario.server.shards]
        assert all(supervisor.health_check() for supervisor in supervisors)
        scenario.close()
        assert all(not supervisor.health_check() for supervisor in supervisors)
        scenario.close()
